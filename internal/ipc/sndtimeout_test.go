package ipc_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/machine"
)

func TestSendTimeout(t *testing.T) {
	// A sender parked on a full queue with SndTimeout set gives up with
	// SendTimedOut when nobody drains the port.
	for _, style := range []ipc.Style{ipc.StyleMK40, ipc.StyleMK32} {
		k, x := newIPCKernel(t, style)
		k.DebugChecks = true
		port := x.NewPort("stuffed")
		port.QueueLimit = 1
		prog := &retvalProg{acts: []core.Action{
			core.Syscall("send1", func(e *core.Env) {
				m := x.NewMessage(1, ipc.HeaderBytes, 1, nil)
				x.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
			}),
			core.Syscall("send2", func(e *core.Env) {
				m := x.NewMessage(1, ipc.HeaderBytes, 2, nil)
				x.MachMsg(e, ipc.MsgOptions{
					Send: m, SendTo: port,
					SndTimeout: machine.Duration(2 * 1000 * 1000), // 2 ms
				})
			}),
		}}
		th := k.NewThread(core.ThreadSpec{Name: "s", SpaceID: 1, Program: prog})
		k.Setrun(th)
		k.Run(0)
		if th.State != core.StateHalted {
			t.Fatalf("%v: sender hung: %v (%q)", style, th.State, th.WaitLabel)
		}
		if len(prog.rets) != 2 || prog.rets[0] != ipc.MsgSuccess || prog.rets[1] != ipc.SendTimedOut {
			t.Fatalf("%v: rets = %#x, want [MsgSuccess SendTimedOut]", style, prog.rets)
		}
		if got := k.Clock.Now(); got < 2_000_000 {
			t.Fatalf("%v: returned before the timeout: %v", style, got)
		}
		if port.SendWaiters() != 0 {
			t.Fatalf("%v: stale send-waiter registration", style)
		}
		if k.Clock.Pending() != 0 {
			t.Fatalf("%v: timeout event leaked", style)
		}
		k.MustValidate()
	}
}

func TestSendTimeoutCancelledByDrain(t *testing.T) {
	// The queue drains before the timeout: the retried send succeeds and
	// the armed callout is cancelled, not left to fire into a completed
	// call.
	k, x := newIPCKernel(t, ipc.StyleMK40)
	k.DebugChecks = true
	port := x.NewPort("narrow")
	port.QueueLimit = 1
	sent := 0
	var rets []uint64
	sender := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if th.UserReturn == core.ReturnNone && th.KernelEntries > 0 {
			rets = append(rets, th.MD.RetVal)
		}
		if sent >= 2 {
			return core.Exit()
		}
		sent++
		seq := sent
		return core.Syscall("send", func(e *core.Env) {
			m := x.NewMessage(1, ipc.HeaderBytes, seq, nil)
			x.MachMsg(e, ipc.MsgOptions{
				Send: m, SendTo: port,
				SndTimeout: machine.Duration(50 * 1000 * 1000),
			})
		})
	})
	st := k.NewThread(core.ThreadSpec{Name: "s", SpaceID: 1, Program: sender})
	got := 0
	receiver := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if m := x.Received(th); m != nil {
			got++
		}
		if got >= 2 {
			return core.Exit()
		}
		return core.Syscall("recv", func(e *core.Env) {
			x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
		})
	})
	rt := k.NewThread(core.ThreadSpec{Name: "r", SpaceID: 2, Program: receiver})
	k.Setrun(st)
	k.Setrun(rt)
	k.Run(0)
	if got != 2 {
		t.Fatalf("received %d messages", got)
	}
	for i, r := range rets {
		if r != ipc.MsgSuccess {
			t.Fatalf("send %d returned %#x", i, r)
		}
	}
	if k.Clock.Pending() != 0 {
		t.Fatal("send timeout left armed after successful drain")
	}
	k.MustValidate()
}

func TestDestroyPortUnderLoad(t *testing.T) {
	// Destroy ports mid-flight with everything attached at once: a full
	// message queue, senders parked with send timeouts, and (on a second
	// port) receivers blocked with receive timeouts. Everyone completes
	// with the right code, every armed callout is cancelled, and the
	// invariant sweep stays clean throughout.
	k, x := newIPCKernel(t, ipc.StyleMK40)
	k.DebugChecks = true
	full := x.NewPort("full")
	full.QueueLimit = 2
	empty := x.NewPort("empty")

	mkSender := func(i int) *retvalProg {
		return &retvalProg{acts: []core.Action{
			core.Syscall("send", func(e *core.Env) {
				m := x.NewMessage(1, ipc.HeaderBytes, i, nil)
				x.MachMsg(e, ipc.MsgOptions{
					Send: m, SendTo: full,
					SndTimeout: machine.Duration(1_000_000_000),
				})
			}),
		}}
	}
	mkReceiver := func() *retvalProg {
		return &retvalProg{acts: []core.Action{
			core.Syscall("recv", func(e *core.Env) {
				x.MachMsg(e, ipc.MsgOptions{
					ReceiveFrom: empty,
					RcvTimeout:  machine.Duration(1_000_000_000),
				})
			}),
		}}
	}
	var senders, receivers []*retvalProg
	var threads []*core.Thread
	for i := 0; i < 4; i++ { // 2 fill the queue, 2 park as send-waiters
		p := mkSender(i)
		senders = append(senders, p)
		th := k.NewThread(core.ThreadSpec{Name: "s", SpaceID: i + 1, Program: p})
		threads = append(threads, th)
		k.Setrun(th)
	}
	for i := 0; i < 2; i++ {
		p := mkReceiver()
		receivers = append(receivers, p)
		th := k.NewThread(core.ThreadSpec{Name: "r", SpaceID: i + 5, Program: p})
		threads = append(threads, th)
		k.Setrun(th)
	}
	// Let everything park (timeouts are far in the future, so no event
	// can fire without advancing the clock past them).
	for k.StepNoAdvance() {
	}
	if full.QueueLen() != 2 || full.SendWaiters() != 2 || empty.Waiters() != 2 {
		t.Fatalf("load not established: queue=%d sendWaiters=%d rcvWaiters=%d",
			full.QueueLen(), full.SendWaiters(), empty.Waiters())
	}
	e := &core.Env{K: k, P: k.Procs[0]}
	x.DestroyPort(e, full)
	x.DestroyPort(e, empty)
	k.Run(0)
	for _, th := range threads {
		if th.State != core.StateHalted {
			t.Fatalf("%v stuck in %v (%q)", th, th.State, th.WaitLabel)
		}
	}
	// Senders 0 and 1 queued successfully; 2 and 3 were parked and fail.
	for i, p := range senders {
		want := ipc.MsgSuccess
		if i >= 2 {
			want = ipc.SendInvalidDest
		}
		if len(p.rets) != 1 || p.rets[0] != want {
			t.Fatalf("sender %d rets = %#x, want %#x", i, p.rets, want)
		}
	}
	for i, p := range receivers {
		if len(p.rets) != 1 || p.rets[0] != ipc.RcvPortDied {
			t.Fatalf("receiver %d rets = %#x, want RcvPortDied", i, p.rets)
		}
	}
	if k.Clock.Pending() != 0 {
		t.Fatalf("%d callouts leaked past DestroyPort", k.Clock.Pending())
	}
	if full.QueueLen() != 0 {
		t.Fatal("destroyed port kept queued messages")
	}
	k.MustValidate()
}
