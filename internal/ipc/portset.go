package ipc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// source is anything a thread can receive from: a single port or a port
// set. The receive path is written against this interface so the fast
// paths (handoff, recognition) work identically for both.
type source interface {
	// isDead reports whether receiving can never succeed again.
	isDead() bool
	// hasPending reports whether a message could be pulled right now.
	hasPending() bool
	// pull dequeues the next message, charging costs and releasing a
	// blocked sender if room opened; nil when empty.
	pull(x *IPC, e *core.Env) *Message
	// push registers a receive waiter (x supplies the registration pool).
	push(x *IPC, t *core.Thread) *rcvWaiter
	// srcName labels the source for traces.
	srcName() string
}

// PortSet is a Mach port set: a server receives from all member ports
// with a single mach_msg, serving many objects with one thread pool.
type PortSet struct {
	ID   int
	Name string

	members []*Port
	waiters []*rcvWaiter

	// rr rotates the scan start so no member port starves.
	rr int
}

// NewPortSet allocates an empty port set.
func (x *IPC) NewPortSet(name string) *PortSet {
	x.nextPortID++
	ps := &PortSet{ID: x.nextPortID, Name: name}
	x.sets = append(x.sets, ps)
	return ps
}

// AddToSet puts a port into the set. A port belongs to at most one set.
func (x *IPC) AddToSet(p *Port, ps *PortSet) {
	if p.set == ps {
		return
	}
	if p.set != nil {
		panic(fmt.Sprintf("ipc: port %s already in set %s", p.Name, p.set.Name))
	}
	p.set = ps
	ps.members = append(ps.members, p)
}

// RemoveFromSet takes a port out of its set.
func (x *IPC) RemoveFromSet(p *Port) {
	ps := p.set
	if ps == nil {
		return
	}
	p.set = nil
	for i, m := range ps.members {
		if m == p {
			ps.members = append(ps.members[:i], ps.members[i+1:]...)
			break
		}
	}
}

// Members reports the set's current size.
func (ps *PortSet) Members() int { return len(ps.members) }

// Waiters reports threads blocked receiving on the set.
func (ps *PortSet) Waiters() int {
	n := 0
	for _, w := range ps.waiters {
		if !w.cancelled {
			n++
		}
	}
	return n
}

func (ps *PortSet) isDead() bool { return false }

func (ps *PortSet) hasPending() bool {
	for _, p := range ps.members {
		if !p.dead && len(p.queue) > 0 {
			return true
		}
	}
	return false
}

func (ps *PortSet) pull(x *IPC, e *core.Env) *Message {
	n := len(ps.members)
	for i := 0; i < n; i++ {
		p := ps.members[(ps.rr+i)%n]
		if p.dead || len(p.queue) == 0 {
			continue
		}
		ps.rr = (ps.rr + i + 1) % n
		return p.pull(x, e)
	}
	return nil
}

func (ps *PortSet) push(x *IPC, t *core.Thread) *rcvWaiter {
	w := x.newWaiter(t)
	ps.waiters = append(ps.waiters, w)
	return w
}

func (ps *PortSet) srcName() string { return ps.Name }

// ---------------------------------------------------------------------
// Port's source implementation.
// ---------------------------------------------------------------------

func (p *Port) isDead() bool { return p.dead }

func (p *Port) hasPending() bool { return !p.dead && len(p.queue) > 0 }

func (p *Port) pull(x *IPC, e *core.Env) *Message {
	if len(p.queue) == 0 {
		return nil
	}
	if t := e.Cur(); t != nil {
		p.lastReceiver = t
	}
	m := p.queue[0]
	n := copy(p.queue, p.queue[1:])
	p.queue[n] = nil
	p.queue = p.queue[:n]
	p.Dequeued++
	e.Charge(dequeueCost)
	e.Charge(reparseCost)
	e.Trace(obs.DequeueMessage, p.Name)
	// Room opened up: release a sender blocked on the full queue.
	x.wakeSender(p)
	return m
}

func (p *Port) srcName() string { return p.Name }

// findSetReceiver locates a thread blocked on the port's set, if any.
func (x *IPC) findSetReceiver(p *Port) *core.Thread {
	if p.set == nil {
		return nil
	}
	return x.popWaiterList(&p.set.waiters)
}
