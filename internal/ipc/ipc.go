// Package ipc is the interprocess-communication substrate: Mach-style
// ports, messages, and the combined send/receive system call mach_msg,
// including the continuation-based fast RPC path of §2.4 (Figure 2).
//
// Three transfer styles reproduce the three measured kernels:
//
//   - StyleMK40: when the sender finds a receiver blocked with a
//     continuation, it delivers the message, performs a stack handoff,
//     and — still inside its own live call context — recognizes the
//     receiver's continuation. If it is mach_msg_continue the transfer
//     completes inline: no queueing, no scheduler, no repeated parsing,
//     one stack shared between caller and callee.
//
//   - StyleMK32: the process-model kernel with the hand-optimized RPC
//     path: the sender delivers directly to a waiting receiver and
//     context-switches straight to it, bypassing the scheduler and the
//     message queue, but paying a full register save/restore.
//
//   - StyleMach25: the unoptimized hybrid kernel: messages are always
//     queued, the receiver is merely made runnable, and the general
//     scheduler decides who runs next; the receiver re-parses the message
//     after dequeueing it.
package ipc

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Style selects the transfer discipline (see the package comment).
type Style int

const (
	StyleMK40 Style = iota
	StyleMK32
	StyleMach25
)

func (s Style) String() string {
	switch s {
	case StyleMK40:
		return "MK40"
	case StyleMK32:
		return "MK32"
	case StyleMach25:
		return "Mach2.5"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Return codes, after Mach's.
const (
	// MsgSuccess is MACH_MSG_SUCCESS.
	MsgSuccess uint64 = 0
	// RcvTooLarge is MACH_RCV_TOO_LARGE: the message exceeded the
	// receiver's size constraint.
	RcvTooLarge uint64 = 0x10004004
	// RcvTimedOut is MACH_RCV_TIMED_OUT: the receive's timeout expired.
	RcvTimedOut uint64 = 0x10004003
	// RcvPortDied is MACH_RCV_PORT_DIED: the port was destroyed while
	// the thread was blocked receiving on it.
	RcvPortDied uint64 = 0x10004007
	// SendInvalidDest is MACH_SEND_INVALID_DEST: the destination port is
	// dead.
	SendInvalidDest uint64 = 0x10000003
	// SendTimedOut is MACH_SEND_TIMED_OUT: the send's timeout expired
	// while the sender was parked on a full queue.
	SendTimedOut uint64 = 0x10000004
	// RcvInterrupted is MACH_RCV_INTERRUPTED: a blocked receive was
	// cancelled by thread_abort.
	RcvInterrupted uint64 = 0x10004005
	// SendInterrupted is MACH_SEND_INTERRUPTED: a blocked send was
	// cancelled by thread_abort.
	SendInterrupted uint64 = 0x10000007
)

// DefaultQueueLimit is the default bound on a port's message queue, as
// in Mach's port backlog default.
const DefaultQueueLimit = 5

// HeaderBytes is the fixed message header size (24 bytes in Mach 3.0).
const HeaderBytes = 24

// ExcOpRaise is the operation id of an exception request message
// (exception_raise in the Mach exception interface).
const ExcOpRaise uint32 = 2401

// Message is a Mach message: a header plus an untyped body. The simulator
// carries an arbitrary Go payload for programs while charging copy costs
// by the declared size.
type Message struct {
	ID     int
	OpID   uint32 // operation id, chosen by the sender
	Size   int    // total bytes including the header
	Body   any    // payload visible to the receiving program
	Reply  *Port  // where the receiver should send the reply
	Sender *core.Thread

	// OOL transfers the body out-of-line: instead of copying Size bytes
	// through the kernel, the pages are remapped copy-on-write into the
	// receiver (Mach's large-message path). Cheaper for large bodies,
	// dearer for small ones.
	OOL bool

	// Trace is the causal-trace context the message carries: stamped
	// from the sending thread when the sender left it zero, adopted by
	// the receiving thread on copy-out. Part of the header, so it
	// crosses machines inside the netmsg framing too.
	Trace obs.TraceContext

	// Deadline is the absolute sim-time deadline the operation carries
	// (overload control). Zero means none. Part of the header: the
	// netmsg framing forwards it across machines, and every tier checks
	// it on dequeue before spending service time.
	Deadline machine.Time

	// EnqueuedAt is when this buffer was minted (local sends) or
	// rebuilt on arrival (remote delivery): the reference point for the
	// queue-sojourn admission controller. Stamped by NewMessage.
	EnqueuedAt machine.Time
}

// Port is a Mach port: a protected message queue with at most one
// receiver task (rights are simplified away; the control-transfer paths
// are what the paper measures).
type Port struct {
	ID   int
	Name string

	queue   []*Message
	waiters []*rcvWaiter

	// sendWaiters are senders blocked on a full queue.
	sendWaiters []*rcvWaiter

	// QueueLimit bounds the message queue; senders block when it is
	// full. Zero means DefaultQueueLimit.
	QueueLimit int

	// dead marks a destroyed port: sends fail with SendInvalidDest and
	// receives with RcvPortDied.
	dead bool

	// set is the port set this port belongs to, if any.
	set *PortSet

	// KernelSink marks a port whose receiver is the kernel itself (the
	// reply port of an exception RPC). A send to such a port invokes the
	// sink in the sender's context instead of queueing; the sink must be
	// terminal.
	KernelSink func(e *core.Env, msg *Message, opts *MsgOptions)

	// lastReceiver is the thread that most recently registered to receive
	// on (or pulled a message from) this port — the port's presumed owner.
	// The deadlock detector uses it to answer "who is expected to drain
	// this queue" when no receiver is currently registered.
	lastReceiver *core.Thread

	// Enqueued and Dequeued count queue traffic through this port,
	// letting tests verify the fast path bypasses the queue.
	Enqueued uint64
	Dequeued uint64
}

// QueueLen reports how many messages are waiting on the port.
func (p *Port) QueueLen() int { return len(p.queue) }

// Dead reports whether the port has been destroyed.
func (p *Port) Dead() bool { return p.dead }

// Waiters reports how many threads are blocked receiving on the port.
func (p *Port) Waiters() int {
	n := 0
	for _, w := range p.waiters {
		if !w.cancelled {
			n++
		}
	}
	return n
}

// SendWaiters reports how many senders are blocked on the full queue.
func (p *Port) SendWaiters() int {
	n := 0
	for _, w := range p.sendWaiters {
		if !w.cancelled {
			n++
		}
	}
	return n
}

// limit returns the effective queue bound.
func (p *Port) limit() int {
	if p.QueueLimit > 0 {
		return p.QueueLimit
	}
	return DefaultQueueLimit
}

// rcvWaiter is one thread's registration on a port's waiter (or
// send-waiter) list. Cancellation covers consumption by a sender,
// expiry of a receive timeout, and port destruction.
type rcvWaiter struct {
	t         *core.Thread
	cancelled bool
	timeout   *machine.Event
}

// MsgOptions describes one mach_msg invocation: an optional send phase
// followed by an optional receive phase (both present on the RPC paths).
type MsgOptions struct {
	// Send is the message to transmit; nil for a receive-only call.
	Send *Message
	// SendTo is the destination port of the send phase.
	SendTo *Port
	// ReceiveFrom is the port of the receive phase; nil for send-only.
	ReceiveFrom *Port
	// ReceiveFromSet receives from any member of a port set instead of a
	// single port; mutually exclusive with ReceiveFrom.
	ReceiveFromSet *PortSet
	// MaxSize, when nonzero, is an unusual receive-size constraint: the
	// receiver must verify every message against it, so it blocks with
	// the slow receive continuation and recognition fails (§2.4).
	MaxSize int

	// RcvTimeout, when nonzero, bounds how long the receive phase may
	// block; an expired receive returns RcvTimedOut.
	RcvTimeout machine.Duration

	// SndTimeout, when nonzero, bounds how long the send phase may stay
	// parked on a full queue; an expired send returns SendTimedOut. It
	// bounds each park, re-arming if the retried send blocks again.
	SndTimeout machine.Duration
}

// receiveSource resolves the receive phase's source, or nil.
func (o *MsgOptions) receiveSource() source {
	if o.ReceiveFromSet != nil {
		if o.ReceiveFrom != nil {
			panic("ipc: mach_msg with both ReceiveFrom and ReceiveFromSet")
		}
		return o.ReceiveFromSet
	}
	if o.ReceiveFrom != nil {
		return o.ReceiveFrom
	}
	return nil
}

// Path work costs (machine-independent kernel code; the trap and transfer
// component costs come from machine.TransferCosts). The values are
// calibrated so that Table 3 reproduces; see EXPERIMENTS.md.
var (
	validateCost    = machine.Cost{Instrs: 55, Loads: 14, Stores: 6}  // header and option checks
	portLookupCost  = machine.Cost{Instrs: 55, Loads: 19, Stores: 5}  // name -> port translation, space lock
	rightsCost      = machine.Cost{Instrs: 75, Loads: 20, Stores: 13} // capability and reply-right handling
	findRecvCost    = machine.Cost{Instrs: 28, Loads: 9, Stores: 3}   // probe the waiter list
	deliverCost     = machine.Cost{Instrs: 30, Loads: 8, Stores: 8}   // hand message to a waiting receiver
	msgAllocCost    = machine.Cost{Instrs: 75, Loads: 16, Stores: 18} // kernel buffer for a queued message
	enqueueCost     = machine.Cost{Instrs: 60, Loads: 15, Stores: 13}
	dequeueCost     = machine.Cost{Instrs: 70, Loads: 21, Stores: 10}
	reparseCost     = machine.Cost{Instrs: 70, Loads: 22, Stores: 6}   // receiver-side re-examination
	wakeupCost      = machine.Cost{Instrs: 40, Loads: 10, Stores: 8}   // make a thread runnable
	selectCost      = machine.Cost{Instrs: 150, Loads: 40, Stores: 18} // general scheduler selection (Mach 2.5)
	optionCheckCost = machine.Cost{Instrs: 45, Loads: 14, Stores: 4}   // slow-receive constraint processing

	// Out-of-line transfer: a fixed map setup plus a per-page remap,
	// instead of a per-byte copy.
	oolSetupCost   = machine.Cost{Instrs: 900, Loads: 250, Stores: 180}
	oolPerPageCost = machine.Cost{Instrs: 60, Loads: 14, Stores: 18}
)

// transferCost prices moving a message body across the user/kernel
// boundary: byte copy inline, page remap out-of-line.
func transferCost(m *Message) machine.Cost {
	if !m.OOL {
		return machine.CopyBytes(m.Size)
	}
	pages := uint64((m.Size + 4095) / 4096)
	return oolSetupCost.Plus(oolPerPageCost.Scale(pages))
}

// IPC is the interprocess-communication subsystem of one kernel.
type IPC struct {
	K     *core.Kernel
	Style Style

	// ContMsgContinue is mach_msg_continue: the continuation nearly all
	// receivers block with, and the value the fast path recognizes.
	ContMsgContinue *core.Continuation

	// ContMsgRcvSlow is the continuation used when a receive carries
	// unusual options (a MaxSize constraint): it does extra work on every
	// receive, so recognition fails and the general continuation call is
	// taken (§2.4).
	ContMsgRcvSlow *core.Continuation

	// ContMsgSendRetry resumes a sender that blocked on a full message
	// queue.
	ContMsgSendRetry *core.Continuation

	// rcvError holds a pending receive error (timeout, port death) for a
	// woken receiver, keyed by thread ID.
	rcvError map[int]uint64

	// delivered holds a message handed directly to a blocked receiver,
	// keyed by thread ID, until the receiver's resumption consumes it.
	// It models the message travelling on the shared stack (fast path)
	// or in the receiver's pre-posted buffer (MK32 path).
	delivered map[int]*Message

	// received exposes the outcome of the last receive to the receiving
	// thread's user program (the copied-out user buffer).
	received map[int]*Message

	// ports and sets register every allocation, for thread_abort's waiter
	// search and the invariant checker's consistency sweep.
	ports []*Port
	sets  []*PortSet

	// waiterFree and msgFree recycle waiter registrations and message
	// buffers so the steady-state RPC path allocates nothing; see
	// freeWaiter for the timeout caveat.
	waiterFree []*rcvWaiter
	msgFree    []*Message

	// msgSendRetryFn is the bound method value of msgSendRetry, built once
	// so blockFullQueue does not allocate a closure per full-queue park.
	msgSendRetryFn func(*core.Env)

	nextPortID int
	nextMsgID  int

	// UserReturnHook, when non-nil, is consulted as a receive completes,
	// before control transfers back to user space. Returning true means
	// the hook performed the user-level transfer itself (it must be
	// terminal). This is the §4 extension point: a registered overriding
	// user-level continuation for system call returns (the LRPC-style
	// transfer protocol).
	UserReturnHook func(e *core.Env, t *core.Thread, m *Message) bool

	// Counters.
	FastRPCs       uint64 // handoff + recognition completions
	SlowReceives   uint64 // completions through a called continuation
	QueuedSends    uint64
	DirectSwitches uint64 // MK32-style directed transfers
}

// New creates the IPC subsystem for a kernel with the given style.
// StyleMK40 requires a continuation kernel; the process-model styles
// require a process-model kernel.
func New(k *core.Kernel, style Style) *IPC {
	if (style == StyleMK40) != k.UseContinuations {
		panic(fmt.Sprintf("ipc: style %v mismatches kernel continuations=%v", style, k.UseContinuations))
	}
	x := &IPC{
		K:         k,
		Style:     style,
		delivered: make(map[int]*Message),
		received:  make(map[int]*Message),
		rcvError:  make(map[int]uint64),
	}
	x.ContMsgContinue = core.NewContinuation("mach_msg_continue", x.msgContinue)
	x.ContMsgRcvSlow = core.NewContinuation("mach_msg_receive_slow", x.msgReceiveSlow)
	x.ContMsgSendRetry = core.NewContinuation("mach_msg_send_retry", x.msgSendRetry)
	x.msgSendRetryFn = x.msgSendRetry
	k.Invariants = append(k.Invariants, x.checkInvariants)
	return x
}

// NewPort allocates a port.
func (x *IPC) NewPort(name string) *Port {
	x.nextPortID++
	p := &Port{ID: x.nextPortID, Name: name}
	x.ports = append(x.ports, p)
	return p
}

// NewMessage builds a message of the given total size, recycling a freed
// buffer when one is available. IDs are always fresh.
func (x *IPC) NewMessage(op uint32, size int, body any, reply *Port) *Message {
	if size < HeaderBytes {
		size = HeaderBytes
	}
	x.nextMsgID++
	now := x.K.Clock.Now()
	if n := len(x.msgFree); n > 0 {
		m := x.msgFree[n-1]
		x.msgFree[n-1] = nil
		x.msgFree = x.msgFree[:n-1]
		*m = Message{ID: x.nextMsgID, OpID: op, Size: size, Body: body, Reply: reply, EnqueuedAt: now}
		return m
	}
	return &Message{ID: x.nextMsgID, OpID: op, Size: size, Body: body, Reply: reply, EnqueuedAt: now}
}

// FreeMessage returns a consumed message to the subsystem's pool — the
// simulated analogue of freeing the kernel message buffer. The caller must
// drop every reference: a later NewMessage may hand the buffer out again
// with fresh contents.
func (x *IPC) FreeMessage(m *Message) {
	if m == nil {
		return
	}
	*m = Message{}
	x.msgFree = append(x.msgFree, m)
}

// Received returns (and clears) the message the thread's last successful
// receive copied out — how the simulated user program reads its buffer.
func (x *IPC) Received(t *core.Thread) *Message {
	m := x.received[t.ID]
	delete(x.received, t.ID)
	if m != nil {
		// The receiver acts on the message's behalf from here on: adopt
		// its trace context (zero clears any stale one).
		t.Trace = m.Trace
	}
	return m
}

// takeDelivered consumes a directly-delivered message.
func (x *IPC) takeDelivered(t *core.Thread) *Message {
	m := x.delivered[t.ID]
	if m != nil {
		delete(x.delivered, t.ID)
	}
	return m
}

// DeliverTo hands a message directly to a receiver (which the caller has
// removed from a waiter list), charging the delivery cost. The receiver's
// resumption will consume it.
func (x *IPC) DeliverTo(e *core.Env, recv *core.Thread, m *Message) {
	e.Charge(deliverCost)
	x.delivered[recv.ID] = m
}

// Enqueue places a message on a port's queue, charging allocation and
// queueing: the slow-path delivery used when no receiver waits (and
// always used by the Mach 2.5 style).
func (x *IPC) Enqueue(e *core.Env, p *Port, m *Message) {
	x.enqueue(e, p, m)
}

// PopWaiter removes and returns the first thread blocked receiving on the
// port, or nil. The caller becomes responsible for delivering to it.
func (x *IPC) PopWaiter(e *core.Env, p *Port) *core.Thread {
	e.Charge(findRecvCost)
	return x.popWaiter(p)
}

// RegisterReceiver records that t is about to block receiving on p: its
// receive parameters go to the scratch area and it joins the waiter list.
// The caller sets the wait state and blocks. cont reports the
// continuation the thread should block with (the slow variant when a
// size constraint is present).
func (x *IPC) RegisterReceiver(t *core.Thread, p *Port, maxSize int) (cont *core.Continuation) {
	x.saveReceiveState(t, p, maxSize)
	p.push(x, t)
	t.WaitLabel = "mach_msg receive"
	if maxSize > 0 {
		return x.ContMsgRcvSlow
	}
	return x.ContMsgContinue
}

// Receive runs the receive phase of mach_msg in the current thread's
// context: consume a delivered or queued message, or block. Terminal.
func (x *IPC) Receive(e *core.Env, p *Port, maxSize int) {
	x.receive(e, p, maxSize, 0)
}

// ReceiveTimeout is Receive with a bounded block: the receive fails with
// RcvTimedOut after the given wait (zero means wait forever). The netmsg
// proxy path uses it to carry a mach_msg RcvTimeout through a forwarded
// send, which is what lets an RPC client survive a crashed server.
// Terminal.
func (x *IPC) ReceiveTimeout(e *core.Env, p *Port, maxSize int, timeout machine.Duration) {
	x.receive(e, p, maxSize, timeout)
}

// ReceiveSet is Receive over a port set. Terminal.
func (x *IPC) ReceiveSet(e *core.Env, ps *PortSet, maxSize int) {
	x.receive(e, ps, maxSize, 0)
}

// CompleteReceive finishes the current thread's receive with m: copyout
// and system-call return. Used by recognizing fast paths. Terminal.
func (x *IPC) CompleteReceive(e *core.Env, m *Message) {
	x.copyOutAndReturn(e, m)
}

// TakeDelivered consumes a message that was directly delivered to t, if
// any.
func (x *IPC) TakeDelivered(t *core.Thread) *Message {
	return x.takeDelivered(t)
}

// TakeDeliveredPeek reports a pending direct delivery without consuming
// it, used by fast paths to decide whether a receive would block.
func (x *IPC) TakeDeliveredPeek(t *core.Thread) *Message {
	return x.delivered[t.ID]
}

// popWaiter consumes the first live waiter registration on the port,
// cancelling its timeout.
func (x *IPC) popWaiter(p *Port) *core.Thread {
	return x.popWaiterList(&p.waiters)
}

// popWaiterList consumes the first live registration on any waiter list.
// The consumed prefix is shifted out in place (the backing array is
// reused by later pushes) and its registrations go back to the free list.
func (x *IPC) popWaiterList(list *[]*rcvWaiter) *core.Thread {
	q := *list
	n := 0
	var res *core.Thread
	for n < len(q) {
		w := q[n]
		n++
		if w.cancelled || w.t.State != core.StateWaiting {
			x.freeWaiter(w)
			continue
		}
		w.cancelled = true
		if w.timeout != nil {
			x.K.Clock.Cancel(w.timeout)
			w.timeout = nil
		}
		res = w.t
		x.freeWaiter(w)
		break
	}
	if n > 0 {
		m := copy(q, q[n:])
		for i := m; i < len(q); i++ {
			q[i] = nil
		}
		*list = q[:m]
	}
	return res
}

// newWaiter takes a registration from the free list, or allocates one.
func (x *IPC) newWaiter(t *core.Thread) *rcvWaiter {
	if n := len(x.waiterFree); n > 0 {
		w := x.waiterFree[n-1]
		x.waiterFree[n-1] = nil
		x.waiterFree = x.waiterFree[:n-1]
		w.t = t
		return w
	}
	return &rcvWaiter{t: t}
}

// freeWaiter recycles a registration that has left its waiter list. A
// registration whose timeout is still armed is left to the garbage
// collector: the timeout closure holds a reference, and recycling it
// would let a stale timer cancel an unrelated waiter.
func (x *IPC) freeWaiter(w *rcvWaiter) {
	if w.timeout != nil {
		return
	}
	*w = rcvWaiter{}
	x.waiterFree = append(x.waiterFree, w)
}

// push registers t as a receive waiter on p (the source interface).
func (p *Port) push(x *IPC, t *core.Thread) *rcvWaiter {
	w := x.newWaiter(t)
	p.waiters = append(p.waiters, w)
	p.lastReceiver = t
	return w
}

// MachMsg is the mach_msg system call: an optional send phase followed by
// an optional receive phase. It must be invoked from a syscall handler
// and is terminal.
func (x *IPC) MachMsg(e *core.Env, opts MsgOptions) {
	e.Charge(validateCost)
	src := opts.receiveSource()
	if r := x.K.Obs; r != nil && opts.Send != nil && src != nil && opts.Send.Reply != nil {
		// A combined send+receive whose request carries a reply port is
		// the client half of an RPC; the copy-out that completes the
		// receive closes the bracket.
		t := e.Cur()
		dest := ""
		if opts.SendTo != nil {
			dest = opts.SendTo.Name
		}
		r.Emit(obs.RPCStart, t.ID, t.Name, "", dest)
	}
	if opts.Send != nil {
		x.send(e, opts, src)
	}
	if src == nil {
		panic("ipc: mach_msg with neither send nor receive")
	}
	x.receive(e, src, opts.MaxSize, opts.RcvTimeout)
}

// send runs the send phase. It returns normally only when the transfer
// continued into the receive phase of the same call; otherwise it is
// terminal.
func (x *IPC) send(e *core.Env, opts MsgOptions, src source) {
	k := x.K
	t := e.Cur()
	msg := opts.Send
	dest := opts.SendTo
	if dest == nil {
		panic("ipc: send without a destination port")
	}
	msg.Sender = t
	if msg.Trace == (obs.TraceContext{}) {
		msg.Trace = t.Trace
	}
	e.Charge(transferCost(msg)) // copyin or out-of-line map
	if k.Obs != nil {
		e.Trace(obs.CopyIn, strconv.Itoa(msg.Size)+" bytes")
	}
	e.Charge(portLookupCost)
	e.Charge(rightsCost)
	if dest.dead {
		// The destination was destroyed: the send fails immediately and
		// the receive phase is not attempted.
		k.ThreadSyscallReturn(e, SendInvalidDest)
	}

	if dest.KernelSink != nil {
		// Copy before taking the address: &opts would make every send heap-
		// allocate its options, sink or no sink.
		o := opts
		dest.KernelSink(e, msg, &o)
		panic("ipc: kernel sink returned instead of transferring control")
	}

	e.Charge(findRecvCost)
	e.Trace(obs.FindReceiver, dest.Name)
	recv := x.popWaiter(dest)
	if recv == nil {
		// A thread blocked on the port's set can take the message too.
		recv = x.findSetReceiver(dest)
	}

	switch x.Style {
	case StyleMK40:
		if recv != nil && recv.Cont != nil && k.CanHandoff() {
			x.sendHandoff(e, opts, src, recv)
			return // unreachable; sendHandoff is terminal
		}
		if recv != nil {
			// Receiver blocked under the process model (rare in MK40):
			// deliver and wake it through the general path.
			e.Charge(deliverCost)
			x.delivered[recv.ID] = msg
			e.Charge(wakeupCost)
			k.Setrun(recv)
			x.finishSendPhase(e, opts)
			return
		}
	case StyleMK32:
		if recv != nil {
			// Deliver into the receiver's buffer and context-switch
			// directly to it, bypassing the scheduler and the queue.
			e.Charge(deliverCost)
			x.delivered[recv.ID] = msg
			x.DirectSwitches++
			if src != nil && !src.hasPending() && x.delivered[t.ID] == nil {
				maxSize := opts.MaxSize
				t.State = core.StateWaiting
				t.WaitLabel = "mach_msg receive"
				w := src.push(x, t)
				x.armTimeout(w, opts.RcvTimeout)
				k.BlockDirected(e, stats.BlockReceive,
					func(e2 *core.Env) { x.resumeReceive(e2, src, maxSize) },
					192, "mach_msg", recv)
			}
			if src != nil {
				// The sender's receive completes immediately; wake the
				// receiver through the run queue instead.
				e.Charge(wakeupCost)
				k.Setrun(recv)
				x.receive(e, src, opts.MaxSize, opts.RcvTimeout)
			}
			e.Charge(wakeupCost)
			k.Setrun(recv)
			k.ThreadSyscallReturn(e, MsgSuccess)
		}
	case StyleMach25:
		// Always queue; the receiver (if any) is merely made runnable
		// and the general scheduler arbitrates.
		if len(dest.queue) >= dest.limit() {
			x.blockFullQueue(e, dest, opts)
		}
		x.enqueue(e, dest, msg)
		if recv != nil {
			e.Charge(wakeupCost)
			e.Charge(selectCost)
			k.Setrun(recv)
		}
		x.finishSendPhase(e, opts)
		return
	}

	// No receiver waiting: queue the message and continue (blocking
	// first if the queue is at its limit).
	if len(dest.queue) >= dest.limit() {
		x.blockFullQueue(e, dest, opts)
	}
	x.enqueue(e, dest, msg)
	x.finishSendPhase(e, opts)
}

// blockFullQueue parks the sender until the destination queue drains (or
// the port dies). The whole mach_msg retries from the top when the
// sender resumes. Terminal.
func (x *IPC) blockFullQueue(e *core.Env, dest *Port, opts MsgOptions) {
	t := e.Cur()
	// Stash the entire call in the scratch area: destination, message,
	// receive port and size bound (four of the seven words).
	t.Scratch.PutRef(0, dest)
	t.Scratch.PutRef(1, opts.Send)
	if opts.ReceiveFromSet != nil {
		t.Scratch.PutRef(2, opts.ReceiveFromSet)
	} else {
		t.Scratch.PutRef(2, opts.ReceiveFrom)
	}
	t.Scratch.PutWord(3, uint32(opts.MaxSize))
	t.Scratch.PutRef(4, opts.SndTimeout)
	w := x.newWaiter(t)
	dest.sendWaiters = append(dest.sendWaiters, w)
	if d := opts.SndTimeout; d != 0 {
		w.timeout = x.K.Clock.After(d, "mach_msg-snd-timeout", func() {
			if w.cancelled || w.t.State != core.StateWaiting {
				return
			}
			w.cancelled = true
			x.rcvError[w.t.ID] = SendTimedOut
			x.K.Setrun(w.t)
		})
	}
	t.State = core.StateWaiting
	t.WaitLabel = "mach_msg send (queue full)"
	x.K.Block(e, stats.BlockReceive, x.ContMsgSendRetry,
		x.msgSendRetryFn, 224, "send-queue-full")
}

// msgSendRetry resumes a sender that blocked on a full queue: rebuild the
// call from scratch state and retry mach_msg from the top. Terminal.
func (x *IPC) msgSendRetry(e *core.Env) {
	t := e.Cur()
	if code, ok := x.rcvError[t.ID]; ok {
		delete(x.rcvError, t.ID)
		x.K.ThreadSyscallReturn(e, code)
	}
	dest := t.Scratch.Ref(0).(*Port)
	msg := t.Scratch.Ref(1).(*Message)
	opts := MsgOptions{
		Send:    msg,
		SendTo:  dest,
		MaxSize: int(t.Scratch.Word(3)),
	}
	if d, ok := t.Scratch.Ref(4).(machine.Duration); ok {
		opts.SndTimeout = d
	}
	switch r := t.Scratch.Ref(2).(type) {
	case *Port:
		opts.ReceiveFrom = r
	case *PortSet:
		opts.ReceiveFromSet = r
	}
	x.MachMsg(e, opts)
}

// wakeSender releases one blocked sender now that the queue has room.
func (x *IPC) wakeSender(p *Port) {
	q := p.sendWaiters
	n := 0
	for n < len(q) {
		w := q[n]
		n++
		if w.cancelled || w.t.State != core.StateWaiting {
			x.freeWaiter(w)
			continue
		}
		w.cancelled = true
		if w.timeout != nil {
			x.K.Clock.Cancel(w.timeout)
			w.timeout = nil
		}
		x.K.Setrun(w.t)
		x.freeWaiter(w)
		break
	}
	if n > 0 {
		m := copy(q, q[n:])
		for i := m; i < len(q); i++ {
			q[i] = nil
		}
		p.sendWaiters = q[:m]
	}
}

// armTimeout schedules a receive timeout for a registered waiter.
func (x *IPC) armTimeout(w *rcvWaiter, d machine.Duration) {
	if d == 0 {
		return
	}
	w.timeout = x.K.Clock.After(d, "mach_msg-rcv-timeout", func() {
		if w.cancelled || w.t.State != core.StateWaiting {
			return
		}
		w.cancelled = true
		x.rcvError[w.t.ID] = RcvTimedOut
		x.K.Setrun(w.t)
	})
}

// DestroyPort destroys a port: queued messages are discarded, blocked
// receivers wake with RcvPortDied, blocked senders with SendInvalidDest,
// and future sends fail. Idempotent.
func (x *IPC) DestroyPort(e *core.Env, p *Port) {
	if p.dead {
		return
	}
	e.Charge(machine.Cost{Instrs: 90, Loads: 25, Stores: 20})
	p.dead = true
	p.queue = nil
	for _, w := range p.waiters {
		if w.cancelled || w.t.State != core.StateWaiting {
			continue
		}
		w.cancelled = true
		if w.timeout != nil {
			x.K.Clock.Cancel(w.timeout)
		}
		x.rcvError[w.t.ID] = RcvPortDied
		x.K.Setrun(w.t)
	}
	p.waiters = nil
	for _, w := range p.sendWaiters {
		if w.cancelled || w.t.State != core.StateWaiting {
			continue
		}
		w.cancelled = true
		if w.timeout != nil {
			x.K.Clock.Cancel(w.timeout)
		}
		x.rcvError[w.t.ID] = SendInvalidDest
		x.K.Setrun(w.t)
	}
	p.sendWaiters = nil
}

// enqueue places a message on a port's queue.
func (x *IPC) enqueue(e *core.Env, p *Port, msg *Message) {
	e.Charge(msgAllocCost)
	e.Charge(enqueueCost)
	p.queue = append(p.queue, msg)
	p.Enqueued++
	x.QueuedSends++
	e.Trace(obs.QueueMessage, p.Name)
}

// finishSendPhase either falls into the receive phase (returning to the
// caller) or completes a send-only call. Terminal unless a receive phase
// follows.
func (x *IPC) finishSendPhase(e *core.Env, opts MsgOptions) {
	if opts.receiveSource() != nil {
		return
	}
	x.K.ThreadSyscallReturn(e, MsgSuccess)
}

// sendHandoff is the §2.4 fast path: the receiver is blocked with a
// continuation, so the sender hands its stack (and, implicitly, the
// message in its live call context) directly to the receiver. Terminal.
func (x *IPC) sendHandoff(e *core.Env, opts MsgOptions, src source, recv *core.Thread) {
	k := x.K
	t := e.Cur()
	msg := opts.Send
	e.Charge(deliverCost)
	x.delivered[recv.ID] = msg

	if src == nil {
		// Send-only to a waiting receiver: wake it and return; no
		// handoff is needed because the sender keeps running.
		e.Charge(wakeupCost)
		k.Setrun(recv)
		k.ThreadSyscallReturn(e, MsgSuccess)
	}

	// The handoff requires that the sender's receive phase would
	// genuinely block; if a message already awaits the sender, wake the
	// receiver through the queue-less general path and take the receive
	// immediately.
	if src.hasPending() || x.delivered[t.ID] != nil {
		e.Charge(wakeupCost)
		k.Setrun(recv)
		x.receive(e, src, opts.MaxSize, opts.RcvTimeout)
	}

	// Combined send/receive: the sender blocks waiting for its own
	// message. Stash the receive parameters in the 28-byte scratch area
	// and hand the stack to the receiver.
	x.saveReceiveState(t, src, opts.MaxSize)
	w := src.push(x, t)
	x.armTimeout(w, opts.RcvTimeout)
	t.State = core.StateWaiting
	t.WaitLabel = "mach_msg receive"
	cont := x.ContMsgContinue
	if opts.MaxSize > 0 {
		cont = x.ContMsgRcvSlow
	}
	k.ThreadHandoff(e, stats.BlockReceive, cont, recv)

	// Running as the receiver now, inside the sender's still-live
	// mach_msg activation. Examine the continuation before using it.
	if k.Recognize(e, x.ContMsgContinue) {
		// The receiver blocked on the common path: complete its receive
		// inline. The message was passed on the shared stack; only the
		// sender checked it for exceptional conditions.
		x.FastRPCs++
		m := x.takeDelivered(e.Cur())
		if m == nil {
			panic("ipc: fast path lost its message")
		}
		x.copyOutAndReturn(e, m)
	}
	// Unusual receiver: give it its own continuation, which redoes the
	// option processing.
	k.CallContinuation(e, e.Cur().Cont)
}

// saveReceiveState records a blocked receiver's parameters in its scratch
// area: the receive source (port or port set) and the size constraint.
func (x *IPC) saveReceiveState(t *core.Thread, src source, maxSize int) {
	t.Scratch.PutRef(0, src)
	t.Scratch.PutWord(1, uint32(maxSize))
}

// receive runs the receive phase in the receiving thread's own context,
// from a port or a port set. Terminal.
func (x *IPC) receive(e *core.Env, src source, maxSize int, timeout machine.Duration) {
	t := e.Cur()
	// A pending receive error (timeout, port death) ends the call.
	if code, ok := x.rcvError[t.ID]; ok {
		delete(x.rcvError, t.ID)
		x.K.ThreadSyscallReturn(e, code)
	}
	// A message may already have been handed to us.
	if m := x.takeDelivered(t); m != nil {
		x.finishReceiveChecked(e, m, maxSize)
	}
	if src.isDead() {
		x.K.ThreadSyscallReturn(e, RcvPortDied)
	}
	if m := src.pull(x, e); m != nil {
		x.finishReceiveChecked(e, m, maxSize)
	}

	// Nothing available: block. Nearly all receivers block on the common
	// path with mach_msg_continue; a size-constrained receive blocks with
	// the slow continuation.
	x.saveReceiveState(t, src, maxSize)
	w := src.push(x, t)
	x.armTimeout(w, timeout)
	t.State = core.StateWaiting
	t.WaitLabel = "mach_msg receive"
	cont := x.ContMsgContinue
	if maxSize > 0 {
		cont = x.ContMsgRcvSlow
	}
	// A continuation kernel blocks with cont and never runs the resume
	// step; building the closure only when it can be used keeps the MK40
	// receive path allocation-free.
	var resume func(*core.Env)
	if !x.K.UseContinuations {
		resume = func(e2 *core.Env) { x.resumeReceive(e2, src, maxSize) }
	}
	x.K.Block(e, stats.BlockReceive, cont, resume, 192, "mach_msg")
}

// resumeReceive is the process-model resumption of a blocked receive.
// Re-parsing costs are charged where a message is actually dequeued.
func (x *IPC) resumeReceive(e *core.Env, src source, maxSize int) {
	x.receive(e, src, maxSize, 0)
}

// msgContinue is mach_msg_continue: the general continuation of a
// receiver blocked on the common path. It runs when the transfer was not
// completed inline by a recognizing sender. Terminal.
func (x *IPC) msgContinue(e *core.Env) {
	t := e.Cur()
	src, maxSize := x.savedReceiveState(t)
	if code, ok := x.rcvError[t.ID]; ok {
		delete(x.rcvError, t.ID)
		x.K.ThreadSyscallReturn(e, code)
	}
	if m := x.takeDelivered(t); m != nil {
		x.SlowReceives++
		x.copyOutAndReturn(e, m)
	}
	// Woken to drain the queue.
	x.receive(e, src, maxSize, 0)
}

// msgReceiveSlow is the continuation of a receiver with unusual options:
// it re-checks the size constraint on every message, which is why the
// fast path cannot recognize it away. Terminal.
func (x *IPC) msgReceiveSlow(e *core.Env) {
	t := e.Cur()
	src, maxSize := x.savedReceiveState(t)
	e.Charge(optionCheckCost)
	if code, ok := x.rcvError[t.ID]; ok {
		delete(x.rcvError, t.ID)
		x.K.ThreadSyscallReturn(e, code)
	}
	if m := x.takeDelivered(t); m != nil {
		x.SlowReceives++
		x.finishReceiveChecked(e, m, maxSize)
	}
	x.receive(e, src, maxSize, 0)
}

// savedReceiveState recovers the parameters stashed by saveReceiveState.
func (x *IPC) savedReceiveState(t *core.Thread) (source, int) {
	src, ok := t.Scratch.Ref(0).(source)
	if !ok {
		panic(fmt.Sprintf("ipc: %v resumed a receive without saved state", t))
	}
	return src, int(t.Scratch.Word(1))
}

// finishReceiveChecked applies the receiver's size constraint, then
// copies out. Terminal.
func (x *IPC) finishReceiveChecked(e *core.Env, m *Message, maxSize int) {
	if maxSize > 0 {
		e.Charge(optionCheckCost)
		if m.Size > maxSize {
			x.K.ThreadSyscallReturn(e, RcvTooLarge)
		}
	}
	x.copyOutAndReturn(e, m)
}

// copyOutAndReturn copies the message to user space and completes the
// system call. Terminal.
func (x *IPC) copyOutAndReturn(e *core.Env, m *Message) {
	t := e.Cur()
	e.Charge(transferCost(m))
	if r := x.K.Obs; r != nil {
		e.Trace(obs.CopyOut, strconv.Itoa(m.Size)+" bytes")
		r.Emit(obs.RPCEnd, t.ID, t.Name, "", "")
	}
	x.received[t.ID] = m
	if x.UserReturnHook != nil && x.UserReturnHook(e, t, m) {
		panic("ipc: user return hook returned instead of transferring control")
	}
	x.K.ThreadSyscallReturn(e, MsgSuccess)
}
