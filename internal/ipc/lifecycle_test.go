package ipc_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/machine"
)

// retvals runs a program and records every syscall return value.
type retvalProg struct {
	acts []core.Action
	pos  int
	rets []uint64
}

func (p *retvalProg) Next(e *core.Env, t *core.Thread) core.Action {
	if t.UserReturn == core.ReturnNone && t.KernelEntries > 0 {
		p.rets = append(p.rets, t.MD.RetVal)
	}
	if p.pos >= len(p.acts) {
		return core.Exit()
	}
	a := p.acts[p.pos]
	p.pos++
	return a
}

func TestReceiveTimeout(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	port := x.NewPort("empty")
	prog := &retvalProg{acts: []core.Action{
		core.Syscall("recv", func(e *core.Env) {
			x.MachMsg(e, ipc.MsgOptions{
				ReceiveFrom: port,
				RcvTimeout:  machine.Duration(2 * 1000 * 1000), // 2 ms
			})
		}),
	}}
	th := k.NewThread(core.ThreadSpec{Name: "r", SpaceID: 1, Program: prog})
	k.Setrun(th)
	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("receiver hung: %v (%q)", th.State, th.WaitLabel)
	}
	if len(prog.rets) != 1 || prog.rets[0] != ipc.RcvTimedOut {
		t.Fatalf("rets = %#x, want RcvTimedOut", prog.rets)
	}
	if got := k.Clock.Now(); got < 2_000_000 {
		t.Fatalf("returned before the timeout: %v", got)
	}
	if port.Waiters() != 0 {
		t.Fatalf("stale waiter registration: %d", port.Waiters())
	}
}

func TestReceiveTimeoutCancelledByDelivery(t *testing.T) {
	for _, style := range []ipc.Style{ipc.StyleMK40, ipc.StyleMK32} {
		k, x := newIPCKernel(t, style)
		port := x.NewPort("p")
		recvProg := &retvalProg{acts: []core.Action{
			core.Syscall("recv", func(e *core.Env) {
				x.MachMsg(e, ipc.MsgOptions{
					ReceiveFrom: port,
					RcvTimeout:  machine.Duration(50 * 1000 * 1000),
				})
			}),
		}}
		rt := k.NewThread(core.ThreadSpec{Name: "r", SpaceID: 1, Program: recvProg})
		sendProg := &retvalProg{acts: []core.Action{
			core.RunFor(1000),
			core.Syscall("send", func(e *core.Env) {
				m := x.NewMessage(1, ipc.HeaderBytes, "hi", nil)
				x.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
			}),
		}}
		st := k.NewThread(core.ThreadSpec{Name: "s", SpaceID: 2, Program: sendProg})
		k.Setrun(rt)
		k.Setrun(st)
		k.Run(0)
		if len(recvProg.rets) == 0 || recvProg.rets[0] != ipc.MsgSuccess {
			t.Fatalf("%v: rets = %#x", style, recvProg.rets)
		}
		// The timeout must not fire later (the clock drained fully).
		if k.Clock.Pending() != 0 {
			t.Fatalf("%v: timeout event still pending", style)
		}
	}
}

func TestDestroyPortWakesReceivers(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	port := x.NewPort("victim")
	var rets []uint64
	for i := 0; i < 3; i++ {
		prog := &retvalProg{acts: []core.Action{
			core.Syscall("recv", func(e *core.Env) {
				x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
			}),
		}}
		th := k.NewThread(core.ThreadSpec{Name: "r", SpaceID: i + 1, Program: prog})
		k.Setrun(th)
		defer func(p *retvalProg) { rets = append(rets, p.rets...) }(prog)
	}
	destroyer := &retvalProg{acts: []core.Action{
		core.RunFor(1000),
		core.Syscall("destroy", func(e *core.Env) {
			x.DestroyPort(e, port)
			e.K.ThreadSyscallReturn(e, 0)
		}),
	}}
	dt := k.NewThread(core.ThreadSpec{Name: "d", SpaceID: 9, Program: destroyer})
	k.Setrun(dt)
	k.Run(0)
	if !port.Dead() {
		t.Fatal("port not dead")
	}
	for _, th := range k.Threads {
		if th.State != core.StateHalted {
			t.Fatalf("%v stuck in %v", th, th.State)
		}
	}
	if rets == nil {
		t.Skip("deferred collection ordering")
	}
}

func TestDestroyedPortReceiversGetPortDied(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	port := x.NewPort("victim")
	prog := &retvalProg{acts: []core.Action{
		core.Syscall("recv", func(e *core.Env) {
			x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
		}),
	}}
	th := k.NewThread(core.ThreadSpec{Name: "r", SpaceID: 1, Program: prog})
	k.Setrun(th)
	for i := 0; i < 100 && th.State != core.StateWaiting; i++ {
		k.Step()
	}
	e := &core.Env{K: k, P: k.Procs[0]}
	x.DestroyPort(e, port)
	k.Run(0)
	if len(prog.rets) != 1 || prog.rets[0] != ipc.RcvPortDied {
		t.Fatalf("rets = %#x, want RcvPortDied", prog.rets)
	}
}

func TestSendToDeadPortFails(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	port := x.NewPort("dead")
	prog := &retvalProg{acts: []core.Action{
		core.Syscall("kill", func(e *core.Env) {
			x.DestroyPort(e, port)
			e.K.ThreadSyscallReturn(e, 0)
		}),
		core.Syscall("send", func(e *core.Env) {
			m := x.NewMessage(1, ipc.HeaderBytes, nil, nil)
			x.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
		}),
	}}
	th := k.NewThread(core.ThreadSpec{Name: "s", SpaceID: 1, Program: prog})
	k.Setrun(th)
	k.Run(0)
	if len(prog.rets) != 2 || prog.rets[1] != ipc.SendInvalidDest {
		t.Fatalf("rets = %#x, want SendInvalidDest", prog.rets)
	}
}

func TestQueueLimitBlocksSender(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	port := x.NewPort("narrow")
	port.QueueLimit = 2

	// A producer sends 5 messages to a port no one is reading yet.
	sent := 0
	producer := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if sent >= 5 {
			return core.Exit()
		}
		sent++
		seq := sent
		return core.Syscall("send", func(e *core.Env) {
			m := x.NewMessage(1, ipc.HeaderBytes, seq, nil)
			x.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
		})
	})
	pt := k.NewThread(core.ThreadSpec{Name: "producer", SpaceID: 1, Program: producer})
	k.Setrun(pt)

	// Drive until the producer blocks on the full queue.
	for i := 0; i < 10000 && pt.State != core.StateWaiting; i++ {
		if !k.Step() {
			break
		}
	}
	if pt.State != core.StateWaiting {
		t.Fatalf("producer did not block (sent %d)", sent)
	}
	if port.QueueLen() != 2 || port.SendWaiters() != 1 {
		t.Fatalf("queue=%d sendWaiters=%d", port.QueueLen(), port.SendWaiters())
	}
	if !pt.BlockedWith(x.ContMsgSendRetry) {
		t.Fatalf("producer blocked with %v", pt.Cont)
	}
	if pt.HasStack() {
		t.Fatal("blocked sender kept its kernel stack")
	}

	// A consumer drains everything; the producer must finish.
	var got []int
	consumer := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if m := x.Received(th); m != nil {
			got = append(got, m.Body.(int))
		}
		if len(got) >= 5 {
			return core.Exit()
		}
		return core.Syscall("recv", func(e *core.Env) {
			x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
		})
	})
	ct := k.NewThread(core.ThreadSpec{Name: "consumer", SpaceID: 2, Program: consumer})
	k.Setrun(ct)
	k.Run(0)
	if pt.State != core.StateHalted || ct.State != core.StateHalted {
		t.Fatalf("producer=%v consumer=%v", pt.State, ct.State)
	}
	if len(got) != 5 {
		t.Fatalf("consumed %d", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order: %v", got)
		}
	}
}

func TestQueueLimitProcessModel(t *testing.T) {
	// Same scenario under Mach 2.5 (always-queue style).
	k, x := newIPCKernel(t, ipc.StyleMach25)
	port := x.NewPort("narrow")
	port.QueueLimit = 1
	sent := 0
	producer := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if sent >= 3 {
			return core.Exit()
		}
		sent++
		seq := sent
		return core.Syscall("send", func(e *core.Env) {
			m := x.NewMessage(1, ipc.HeaderBytes, seq, nil)
			x.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
		})
	})
	var got []int
	consumer := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if m := x.Received(th); m != nil {
			got = append(got, m.Body.(int))
		}
		if len(got) >= 3 {
			return core.Exit()
		}
		return core.Syscall("recv", func(e *core.Env) {
			x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port})
		})
	})
	pt := k.NewThread(core.ThreadSpec{Name: "producer", SpaceID: 1, Program: producer})
	ct := k.NewThread(core.ThreadSpec{Name: "consumer", SpaceID: 2, Program: consumer})
	k.Setrun(pt)
	k.Setrun(ct)
	k.Run(0)
	if len(got) != 3 || pt.State != core.StateHalted {
		t.Fatalf("got=%v producer=%v", got, pt.State)
	}
}

func TestDestroyPortWakesBlockedSender(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	port := x.NewPort("narrow")
	port.QueueLimit = 1
	prog := &retvalProg{acts: []core.Action{
		core.Syscall("send1", func(e *core.Env) {
			m := x.NewMessage(1, ipc.HeaderBytes, 1, nil)
			x.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
		}),
		core.Syscall("send2", func(e *core.Env) {
			m := x.NewMessage(1, ipc.HeaderBytes, 2, nil)
			x.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
		}),
	}}
	th := k.NewThread(core.ThreadSpec{Name: "s", SpaceID: 1, Program: prog})
	k.Setrun(th)
	for i := 0; i < 10000 && th.State != core.StateWaiting; i++ {
		k.Step()
	}
	if th.State != core.StateWaiting {
		t.Fatal("sender did not block")
	}
	e := &core.Env{K: k, P: k.Procs[0]}
	x.DestroyPort(e, port)
	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("sender stuck: %v", th.State)
	}
	// First send succeeded; the blocked retry fails with the port dead.
	if len(prog.rets) != 2 || prog.rets[0] != ipc.MsgSuccess || prog.rets[1] != ipc.SendInvalidDest {
		t.Fatalf("rets = %#x", prog.rets)
	}
}

func TestTimeoutRaceWithSender(t *testing.T) {
	// Sender and timeout land close together: exactly one of them wins,
	// the receiver never double-completes, and invariants hold.
	for delay := machine.Duration(900); delay <= 1100; delay += 50 {
		k, x := newIPCKernel(t, ipc.StyleMK40)
		port := x.NewPort("race")
		recvProg := &retvalProg{acts: []core.Action{
			core.Syscall("recv", func(e *core.Env) {
				x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: port, RcvTimeout: 1000})
			}),
		}}
		rt := k.NewThread(core.ThreadSpec{Name: "r", SpaceID: 1, Program: recvProg})
		k.Setrun(rt)
		d := delay
		k.Clock.After(d, "late-send", func() {
			// Direct delivery attempt from interrupt context, as a
			// device-driven sender would.
			if w := x.PopWaiter(&core.Env{K: k, P: k.Procs[0]}, port); w != nil {
				x.DeliverTo(&core.Env{K: k, P: k.Procs[0]}, w, x.NewMessage(1, 24, nil, nil))
				k.Setrun(w)
			}
		})
		k.Run(0)
		if rt.State != core.StateHalted {
			t.Fatalf("delay %v: receiver stuck", d)
		}
		if len(recvProg.rets) != 1 {
			t.Fatalf("delay %v: rets = %#x", d, recvProg.rets)
		}
		got := recvProg.rets[0]
		if got != ipc.MsgSuccess && got != ipc.RcvTimedOut {
			t.Fatalf("delay %v: ret = %#x", d, got)
		}
		if err := k.Validate(); err != nil {
			t.Fatalf("delay %v: %v", d, err)
		}
	}
}
