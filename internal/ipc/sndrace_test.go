// White-box test of the same-tick race between a send timeout and a
// queue drain: it reaches into the port's send-waiter list to read the
// armed callout's exact expiry, so it lives inside package ipc.
package ipc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sched"
)

// runSendRace parks a sender on a full queue with a send timeout, then
// schedules a drain event at the timeout's expiry shifted by skew and
// reports the parked send's return code. The whole run is deterministic:
// when both events land on the same tick, heap order (insertion sequence)
// decides, and the timeout was armed first.
func runSendRace(t *testing.T, skew int64) uint64 {
	t.Helper()
	k := core.NewKernel(core.Config{
		Model:            machine.NewCostModel(machine.ArchDS3100),
		UseContinuations: true,
	})
	k.Sched = sched.New(0)
	k.DebugChecks = true
	x := New(k, StyleMK40)
	port := x.NewPort("narrow")
	port.QueueLimit = 1

	sent := 0
	var rets []uint64
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if th.UserReturn == core.ReturnNone && th.KernelEntries > 0 {
			rets = append(rets, th.MD.RetVal)
		}
		if sent >= 2 {
			return core.Exit()
		}
		sent++
		seq := sent
		return core.Syscall("send", func(e *core.Env) {
			m := x.NewMessage(1, HeaderBytes, seq, nil)
			x.MachMsg(e, MsgOptions{
				Send: m, SendTo: port,
				SndTimeout: machine.Duration(1_000_000), // 1 ms
			})
		})
	})
	th := k.NewThread(core.ThreadSpec{Name: "s", SpaceID: 1, Program: prog})
	k.Setrun(th)

	// Park the sender without letting any timer fire.
	for k.StepNoAdvance() {
	}
	if th.State != core.StateWaiting || len(port.sendWaiters) != 1 {
		t.Fatalf("sender not parked: %v, %d waiters", th.State, len(port.sendWaiters))
	}
	w := port.sendWaiters[0]
	if w.timeout == nil || !w.timeout.Pending() {
		t.Fatal("send timeout not armed")
	}
	delay := int64(w.timeout.When) + skew - int64(k.Clock.Now())
	k.Clock.After(machine.Duration(delay), "drain", func() {
		e := &core.Env{K: k, P: k.Procs[0]}
		if len(port.queue) > 0 {
			port.pull(x, e)
		}
	})

	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("skew %v: sender stuck in %v (%q)", skew, th.State, th.WaitLabel)
	}
	if len(rets) != 2 || rets[0] != MsgSuccess {
		t.Fatalf("skew %v: rets = %#x", skew, rets)
	}
	if k.Clock.Pending() != 0 {
		t.Fatalf("skew %v: %d callouts leaked", skew, k.Clock.Pending())
	}
	k.MustValidate()
	return rets[1]
}

// runRcvRace parks a receiver with a receive timeout, then fires a
// delivery event at the timeout's expiry shifted by skew — the path a
// device completion or netmsg arrival takes to hand a message to a
// blocked receiver — and reports the receive's return code plus how many
// messages were left queued (the loser's message must be enqueued, never
// double-delivered or dropped).
func runRcvRace(t *testing.T, skew int64) (ret uint64, queued int) {
	t.Helper()
	k := core.NewKernel(core.Config{
		Model:            machine.NewCostModel(machine.ArchDS3100),
		UseContinuations: true,
	})
	k.Sched = sched.New(0)
	k.DebugChecks = true
	x := New(k, StyleMK40)
	port := x.NewPort("raced")

	prog := &oneRecv{x: x, port: port, timeout: machine.Duration(1_000_000)}
	th := k.NewThread(core.ThreadSpec{Name: "r", SpaceID: 1, Program: prog})
	k.Setrun(th)
	for k.StepNoAdvance() {
	}
	if th.State != core.StateWaiting || len(port.waiters) != 1 {
		t.Fatalf("receiver not parked: %v, %d waiters", th.State, len(port.waiters))
	}
	w := port.waiters[0]
	if w.timeout == nil || !w.timeout.Pending() {
		t.Fatal("receive timeout not armed")
	}
	delay := int64(w.timeout.When) + skew - int64(k.Clock.Now())
	k.Clock.After(machine.Duration(delay), "deliver", func() {
		e := &core.Env{K: k, P: k.Procs[0]}
		m := x.NewMessage(1, HeaderBytes, 7, nil)
		if rcv := x.PopWaiter(e, port); rcv != nil {
			x.DeliverTo(e, rcv, m)
			k.Setrun(rcv)
		} else {
			x.Enqueue(e, port, m)
		}
	})

	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("skew %v: receiver stuck in %v (%q)", skew, th.State, th.WaitLabel)
	}
	if k.Clock.Pending() != 0 {
		t.Fatalf("skew %v: %d callouts leaked", skew, k.Clock.Pending())
	}
	k.MustValidate()
	return prog.ret, port.QueueLen()
}

// oneRecv issues one timed receive, records its return value, and exits.
type oneRecv struct {
	x       *IPC
	port    *Port
	timeout machine.Duration
	done    bool
	ret     uint64
}

func (p *oneRecv) Next(e *core.Env, th *core.Thread) core.Action {
	if p.done {
		p.ret = th.MD.RetVal
		return core.Exit()
	}
	p.done = true
	return core.Syscall("recv", func(e *core.Env) {
		p.x.MachMsg(e, MsgOptions{ReceiveFrom: p.port, RcvTimeout: p.timeout})
	})
}

func TestRcvTimeoutVsDeliveryRace(t *testing.T) {
	// Delivery strictly before expiry: the receive wins, nothing queued.
	if ret, q := runRcvRace(t, -1); ret != MsgSuccess || q != 0 {
		t.Fatalf("early delivery: ret = %#x queued = %d, want MsgSuccess/0", ret, q)
	}
	// Delivery strictly after expiry: the timeout wins and the late
	// message lands on the queue for the next receiver.
	if ret, q := runRcvRace(t, 1); ret != RcvTimedOut || q != 1 {
		t.Fatalf("late delivery: ret = %#x queued = %d, want RcvTimedOut/1", ret, q)
	}
	// The same tick: the timeout was armed first (at block time), so it
	// fires first deterministically; PopWaiter then sees the cancelled
	// registration and the delivery falls back to the queue. Exactly one
	// path wins on every run.
	for i := 0; i < 3; i++ {
		if ret, q := runRcvRace(t, 0); ret != RcvTimedOut || q != 1 {
			t.Fatalf("same-tick run %d: ret = %#x queued = %d, want RcvTimedOut/1", i, ret, q)
		}
	}
}

func TestSendTimeoutVsDrainRace(t *testing.T) {
	// Drain strictly before expiry: the retried send wins.
	if got := runSendRace(t, -1); got != MsgSuccess {
		t.Fatalf("early drain: ret = %#x, want MsgSuccess", got)
	}
	// Drain strictly after expiry: the timeout wins.
	if got := runSendRace(t, 1); got != SendTimedOut {
		t.Fatalf("late drain: ret = %#x, want SendTimedOut", got)
	}
	// The same tick: the event armed first — the timeout — fires first,
	// deterministically, on every run.
	for i := 0; i < 3; i++ {
		if got := runSendRace(t, 0); got != SendTimedOut {
			t.Fatalf("same-tick run %d: ret = %#x, want SendTimedOut", i, got)
		}
	}
}
