package ipc_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ipc"
)

func TestPortSetMembership(t *testing.T) {
	_, x := newIPCKernel(t, ipc.StyleMK40)
	ps := x.NewPortSet("objects")
	a := x.NewPort("a")
	b := x.NewPort("b")
	x.AddToSet(a, ps)
	x.AddToSet(b, ps)
	x.AddToSet(a, ps) // idempotent
	if ps.Members() != 2 {
		t.Fatalf("members = %d", ps.Members())
	}
	x.RemoveFromSet(a)
	if ps.Members() != 1 {
		t.Fatalf("after remove: %d", ps.Members())
	}
	x.RemoveFromSet(a) // no-op
}

func TestPortInTwoSetsPanics(t *testing.T) {
	_, x := newIPCKernel(t, ipc.StyleMK40)
	p := x.NewPort("p")
	x.AddToSet(p, x.NewPortSet("s1"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	x.AddToSet(p, x.NewPortSet("s2"))
}

func TestReceiveFromSetDrainsAllMembers(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	ps := x.NewPortSet("objects")
	ports := []*ipc.Port{x.NewPort("a"), x.NewPort("b"), x.NewPort("c")}
	for _, p := range ports {
		x.AddToSet(p, ps)
	}

	// Producers stuff two messages into each member port.
	for i, p := range ports {
		port := p
		id := i
		sent := 0
		prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
			if sent >= 2 {
				return core.Exit()
			}
			sent++
			seq := sent
			return core.Syscall("send", func(e *core.Env) {
				m := x.NewMessage(uint32(id), ipc.HeaderBytes, [2]int{id, seq}, nil)
				x.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
			})
		})
		k.Setrun(k.NewThread(core.ThreadSpec{Name: "prod", SpaceID: i + 1, Program: prog}))
	}

	var got [][2]int
	server := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if m := x.Received(th); m != nil {
			got = append(got, m.Body.([2]int))
		}
		if len(got) >= 6 {
			return core.Exit()
		}
		return core.Syscall("recv-set", func(e *core.Env) {
			x.MachMsg(e, ipc.MsgOptions{ReceiveFromSet: ps})
		})
	})
	st := k.NewThread(core.ThreadSpec{Name: "server", SpaceID: 9, Program: server})
	k.Setrun(st)
	k.Run(0)

	if len(got) != 6 {
		t.Fatalf("received %d of 6: %v", len(got), got)
	}
	// Per-port FIFO holds even when multiplexed through the set.
	last := map[int]int{}
	for _, pair := range got {
		if pair[1] <= last[pair[0]] {
			t.Fatalf("per-port order violated: %v", got)
		}
		last[pair[0]] = pair[1]
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetWaiterGetsFastHandoff(t *testing.T) {
	// A server blocked on a SET still takes the §2.4 fast path when a
	// sender targets any member port.
	k, x := newIPCKernel(t, ipc.StyleMK40)
	ps := x.NewPortSet("objects")
	port := x.NewPort("member")
	x.AddToSet(port, ps)

	handled := 0
	var pending *ipc.Message
	server := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if m := x.Received(th); m != nil {
			pending = m
		}
		if pending == nil {
			return core.Syscall("recv-set", func(e *core.Env) {
				x.MachMsg(e, ipc.MsgOptions{ReceiveFromSet: ps})
			})
		}
		req := pending
		pending = nil
		handled++
		return core.Syscall("reply+recv-set", func(e *core.Env) {
			reply := x.NewMessage(2, ipc.HeaderBytes, req.Body, nil)
			x.MachMsg(e, ipc.MsgOptions{
				Send: reply, SendTo: req.Reply, ReceiveFromSet: ps,
			})
		})
	})
	st := k.NewThread(core.ThreadSpec{Name: "server", SpaceID: 2, Program: server})

	reply := x.NewPort("reply")
	done := 0
	var answers []any
	client := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if m := x.Received(th); m != nil {
			answers = append(answers, m.Body)
		}
		if done >= 8 {
			return core.Exit()
		}
		done++
		return core.Syscall("rpc", func(e *core.Env) {
			req := x.NewMessage(1, ipc.HeaderBytes, done, reply)
			x.MachMsg(e, ipc.MsgOptions{Send: req, SendTo: port, ReceiveFrom: reply})
		})
	})
	ct := k.NewThread(core.ThreadSpec{Name: "client", SpaceID: 1, Program: client})
	k.Setrun(st)
	k.Setrun(ct)
	k.Run(0)

	if handled != 8 || len(answers) != 8 {
		t.Fatalf("handled=%d answers=%d", handled, len(answers))
	}
	// Fast path engaged through the set: handoffs and recognitions, with
	// (almost) no queue traffic.
	if k.Stats.Handoffs < 12 || k.Stats.Recognitions < 12 {
		t.Fatalf("handoffs=%d recognitions=%d", k.Stats.Handoffs, k.Stats.Recognitions)
	}
	if x.QueuedSends > 2 {
		t.Fatalf("queued %d sends through the set fast path", x.QueuedSends)
	}
	if ps.Waiters() != 1 {
		t.Fatalf("set waiters at quiescence = %d", ps.Waiters())
	}
}

func TestSetRoundRobinAcrossMembers(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	ps := x.NewPortSet("objects")
	a, b := x.NewPort("a"), x.NewPort("b")
	x.AddToSet(a, ps)
	x.AddToSet(b, ps)
	// Preload both queues directly through a producer thread.
	prod := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if th.KernelEntries >= 4 {
			return core.Exit()
		}
		n := th.KernelEntries
		return core.Syscall("send", func(e *core.Env) {
			port := a
			if n%2 == 1 {
				port = b
			}
			m := x.NewMessage(uint32(n), ipc.HeaderBytes, port.Name, nil)
			x.MachMsg(e, ipc.MsgOptions{Send: m, SendTo: port})
		})
	})
	k.Setrun(k.NewThread(core.ThreadSpec{Name: "prod", SpaceID: 1, Program: prod}))
	k.Run(0)

	var order []string
	cons := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if m := x.Received(th); m != nil {
			order = append(order, m.Body.(string))
		}
		if len(order) >= 4 {
			return core.Exit()
		}
		return core.Syscall("recv", func(e *core.Env) {
			x.MachMsg(e, ipc.MsgOptions{ReceiveFromSet: ps})
		})
	})
	k.Setrun(k.NewThread(core.ThreadSpec{Name: "cons", SpaceID: 2, Program: cons}))
	k.Run(0)
	// Round robin alternates members rather than draining one port dry.
	if len(order) != 4 || order[0] == order[1] {
		t.Fatalf("order = %v", order)
	}
}

func TestBothReceiveFieldsPanics(t *testing.T) {
	k, x := newIPCKernel(t, ipc.StyleMK40)
	ps := x.NewPortSet("s")
	p := x.NewPort("p")
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		return core.Syscall("bad", func(e *core.Env) {
			x.MachMsg(e, ipc.MsgOptions{ReceiveFrom: p, ReceiveFromSet: ps})
		})
	})
	k.Setrun(k.NewThread(core.ThreadSpec{Name: "u", SpaceID: 1, Program: prog}))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	k.Run(0)
}
