package ipc

import (
	"fmt"

	"repro/internal/core"
)

// AbortWaiter cancels t's registration on whatever waiter or send-waiter
// list holds it, cancelling any armed callout, and returns the Mach code
// the aborted mach_msg should complete with: RcvInterrupted for a
// blocked receive (port or set), SendInterrupted for a sender parked on
// a full queue. It returns ok=false when t is not blocked in IPC; the
// thread itself is not touched — kern's thread_abort resumes it.
func (x *IPC) AbortWaiter(t *core.Thread) (code uint64, ok bool) {
	cancel := func(list []*rcvWaiter) bool {
		for _, w := range list {
			if w.cancelled || w.t != t {
				continue
			}
			w.cancelled = true
			if w.timeout != nil {
				x.K.Clock.Cancel(w.timeout)
			}
			return true
		}
		return false
	}
	for _, p := range x.ports {
		if cancel(p.waiters) {
			return RcvInterrupted, true
		}
		if cancel(p.sendWaiters) {
			return SendInterrupted, true
		}
	}
	for _, ps := range x.sets {
		if cancel(ps.waiters) {
			return RcvInterrupted, true
		}
	}
	return 0, false
}

// checkInvariants is the IPC contribution to the kernel invariant sweep
// (registered by New, run by core.Kernel.Validate): every live waiter
// registration belongs to a thread that is actually waiting, no thread
// is live on two lists at once, and no cancelled registration still
// holds an armed callout.
func (x *IPC) checkInvariants() error {
	where := make(map[*core.Thread]string)
	check := func(list []*rcvWaiter, label string) error {
		for _, w := range list {
			if w.cancelled {
				if w.timeout.Pending() {
					return fmt.Errorf("ipc: cancelled waiter %v on %s holds a live callout", w.t, label)
				}
				continue
			}
			if w.t.State != core.StateWaiting {
				return fmt.Errorf("ipc: live waiter %v on %s is %v, not waiting", w.t, label, w.t.State)
			}
			if prev, dup := where[w.t]; dup {
				return fmt.Errorf("ipc: %v live on both %s and %s", w.t, prev, label)
			}
			where[w.t] = label
		}
		return nil
	}
	for _, p := range x.ports {
		if err := check(p.waiters, "port "+p.Name); err != nil {
			return err
		}
		if err := check(p.sendWaiters, "send-waiters of "+p.Name); err != nil {
			return err
		}
	}
	for _, ps := range x.sets {
		if err := check(ps.waiters, "set "+ps.Name); err != nil {
			return err
		}
	}
	return nil
}
