package ipc

import (
	"fmt"

	"repro/internal/core"
)

// FindDeadlock builds the wait-for graph over the current port waiters
// and returns the first blocking cycle found, each entry naming a thread
// and the continuation it is blocked with ("srv (mach_msg_continue)");
// nil when no cycle exists.
//
// This is the paper's diagnostic claim made executable: a blocked thread
// is a continuation pointer plus 28 bytes of scratch state, so "what is
// this thread doing" is a table lookup, and a blocking cycle can be
// reported by name without unwinding a single stack.
//
// Edges, conservative by construction so a thread that can unblock on
// its own never sustains a cycle:
//
//   - A sender parked on port P's full queue waits for P's owner — the
//     thread registered to receive on P, or failing that the last thread
//     that received from it.
//   - A receiver blocked on port Q waits for the owner of any port P
//     holding a queued (or delivered-but-unconsumed) request whose reply
//     port is Q: that owner must drain P before anyone can reply on Q.
//   - A waiter with an armed timeout gets no outgoing edges — it will
//     unblock by itself. Device waiters are covered the same way: their
//     I/O watchdog timeout is always armed, so they are leaves of the
//     graph and can stall but never deadlock.
func (x *IPC) FindDeadlock() []string {
	adj := make(map[*core.Thread][]*core.Thread)
	var order []*core.Thread
	addEdge := func(from, to *core.Thread) {
		if from == nil || to == nil {
			return
		}
		if len(adj[from]) == 0 {
			order = append(order, from)
		}
		adj[from] = append(adj[from], to)
	}
	// stuck reports a registration whose thread is genuinely blocked with
	// no way out of its own: live, waiting, and without an armed timeout.
	stuck := func(w *rcvWaiter) bool {
		return !w.cancelled && w.t.State == core.StateWaiting && !w.timeout.Pending()
	}
	owner := func(p *Port) *core.Thread {
		for _, w := range p.waiters {
			if !w.cancelled && w.t.State == core.StateWaiting {
				return w.t
			}
		}
		if lr := p.lastReceiver; lr != nil && lr.State != core.StateHalted {
			return lr
		}
		return nil
	}

	for _, p := range x.ports {
		// Rule 1: blocked senders wait for the port's owner.
		for _, w := range p.sendWaiters {
			if stuck(w) {
				addEdge(w.t, owner(p))
			}
		}
		// Rule 2: a queued request's reply-waiters wait for this port's
		// owner to drain it.
		for _, m := range p.queue {
			if m == nil || m.Reply == nil {
				continue
			}
			to := owner(p)
			for _, w := range m.Reply.waiters {
				if stuck(w) {
					addEdge(w.t, to)
				}
			}
		}
	}
	// Rule 2, delivered variant: a request handed directly to a blocked
	// receiver obligates that receiver to reply. Iterate the thread table
	// (not the map) so the graph construction is deterministic.
	for _, holder := range x.K.Threads {
		m := x.delivered[holder.ID]
		if m == nil || m.Reply == nil || holder.State == core.StateHalted {
			continue
		}
		for _, w := range m.Reply.waiters {
			if stuck(w) {
				addEdge(w.t, holder)
			}
		}
	}

	// Depth-first cycle search in insertion order: 0 white, 1 on the
	// current path, 2 done.
	color := make(map[*core.Thread]int)
	var stack, cycle []*core.Thread
	var dfs func(t *core.Thread) bool
	dfs = func(t *core.Thread) bool {
		color[t] = 1
		stack = append(stack, t)
		for _, to := range adj[t] {
			switch color[to] {
			case 0:
				if dfs(to) {
					return true
				}
			case 1:
				for i, s := range stack {
					if s == to {
						cycle = append([]*core.Thread(nil), stack[i:]...)
						break
					}
				}
				return true
			}
		}
		stack = stack[:len(stack)-1]
		color[t] = 2
		return false
	}
	for _, t := range order {
		if color[t] == 0 && dfs(t) {
			break
		}
	}
	if cycle == nil {
		return nil
	}
	out := make([]string, 0, len(cycle))
	for _, t := range cycle {
		cont := "<stack>"
		if t.Cont != nil {
			cont = t.Cont.Name()
		}
		out = append(out, fmt.Sprintf("%s (%s)", t.Name, cont))
	}
	return out
}
