package vm_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/vm"
)

func newCowKernel(t *testing.T, frames int) (*core.Kernel, *vm.VM) {
	t.Helper()
	k := core.NewKernel(core.Config{
		Model:            machine.NewCostModel(machine.ArchDS3100),
		UseContinuations: true,
	})
	k.Sched = sched.New(0)
	v := vm.New(k, vm.Config{Frames: frames, DiskLatency: 1000 * 1000})
	return k, v
}

func env(k *core.Kernel) *core.Env { return &core.Env{K: k, P: k.Procs[0]} }

func TestShareCopyOnWrite(t *testing.T) {
	k, v := newCowKernel(t, 64)
	v.NewSpace(1)
	v.NewSpace(2)
	for i := 0; i < 4; i++ {
		v.Touch(1, uint64(0x1000*(i+1)))
	}
	framesBefore := v.FreeFrames
	shared := v.ShareCopyOnWrite(env(k), 1, 2, 0x1000, 4)
	if shared != 4 {
		t.Fatalf("shared = %d", shared)
	}
	// Sharing consumes no new frames.
	if v.FreeFrames != framesBefore {
		t.Fatalf("frames changed: %d -> %d", framesBefore, v.FreeFrames)
	}
	sp2 := v.SpaceOf(&core.Thread{SpaceID: 2})
	if sp2.ResidentPages() != 4 || sp2.SharedPages() != 4 {
		t.Fatalf("dst resident=%d shared=%d", sp2.ResidentPages(), sp2.SharedPages())
	}
	if v.CowShares != 4 {
		t.Fatalf("CowShares = %d", v.CowShares)
	}
}

func TestShareSkipsNonResidentAndDuplicates(t *testing.T) {
	k, v := newCowKernel(t, 64)
	v.NewSpace(1)
	v.NewSpace(2)
	v.Touch(1, 0x1000)
	// 0x2000 not resident in the source; share of [0x1000, 0x3000).
	if got := v.ShareCopyOnWrite(env(k), 1, 2, 0x1000, 2); got != 1 {
		t.Fatalf("shared = %d", got)
	}
	// Second share of the same range is a no-op.
	if got := v.ShareCopyOnWrite(env(k), 1, 2, 0x1000, 2); got != 0 {
		t.Fatalf("re-share = %d", got)
	}
}

// cowProg runs a fixed list of (addr, write) touches.
type cowProg struct {
	touches []struct {
		addr  uint64
		write bool
	}
	pos int
	v   *vm.VM
}

func (p *cowProg) Next(e *core.Env, t *core.Thread) core.Action {
	if p.pos >= len(p.touches) {
		return core.Exit()
	}
	a := p.touches[p.pos]
	p.pos++
	return core.Action{Kind: core.ActFault, Addr: a.addr, Write: a.write}
}

func TestWriteFaultBreaksSharing(t *testing.T) {
	k, v := newCowKernel(t, 64)
	v.NewSpace(1)
	v.NewSpace(2)
	v.Touch(1, 0x5000)
	v.ShareCopyOnWrite(env(k), 1, 2, 0x5000, 1)
	framesBefore := v.FreeFrames

	p := &cowProg{v: v}
	p.touches = append(p.touches, struct {
		addr  uint64
		write bool
	}{0x5000, true})
	th := k.NewThread(core.ThreadSpec{Name: "writer", SpaceID: 2, Program: p})
	k.Setrun(th)
	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("writer state = %v", th.State)
	}
	if v.CowBreaks != 1 {
		t.Fatalf("CowBreaks = %d", v.CowBreaks)
	}
	// The private copy claimed one frame.
	if v.FreeFrames != framesBefore-1 {
		t.Fatalf("frames: %d -> %d", framesBefore, v.FreeFrames)
	}
	// Both spaces still see the page; neither is shared any longer.
	sp1 := v.SpaceOf(&core.Thread{SpaceID: 1})
	sp2 := v.SpaceOf(&core.Thread{SpaceID: 2})
	if sp2.SharedPages() != 0 || sp1.SharedPages() != 0 {
		t.Fatalf("sharing survives: %d/%d", sp1.SharedPages(), sp2.SharedPages())
	}
}

func TestReadFaultKeepsSharing(t *testing.T) {
	k, v := newCowKernel(t, 64)
	v.NewSpace(1)
	v.NewSpace(2)
	v.Touch(1, 0x5000)
	v.ShareCopyOnWrite(env(k), 1, 2, 0x5000, 1)

	p := &cowProg{v: v}
	p.touches = append(p.touches, struct {
		addr  uint64
		write bool
	}{0x5000, false})
	th := k.NewThread(core.ThreadSpec{Name: "reader", SpaceID: 2, Program: p})
	k.Setrun(th)
	k.Run(0)
	if v.CowBreaks != 0 {
		t.Fatalf("read fault broke sharing: %d", v.CowBreaks)
	}
	if v.FastFaults != 1 {
		t.Fatalf("FastFaults = %d", v.FastFaults)
	}
}

func TestLastMapperPrivatizesWithoutCopy(t *testing.T) {
	k, v := newCowKernel(t, 64)
	v.NewSpace(1)
	v.NewSpace(2)
	v.Touch(1, 0x7000)
	v.ShareCopyOnWrite(env(k), 1, 2, 0x7000, 1)

	// Evict all of space 1's mappings by forcing the pageout daemon:
	// instead, simulate the source dropping its mapping via eviction
	// pressure is complex — write from space 1 first (refs 2 -> copy),
	// then from space 2 (refs 1 -> privatize in place).
	pw1 := &cowProg{v: v}
	pw1.touches = append(pw1.touches, struct {
		addr  uint64
		write bool
	}{0x7000, true})
	t1 := k.NewThread(core.ThreadSpec{Name: "w1", SpaceID: 1, Program: pw1})
	k.Setrun(t1)
	k.Run(0)
	framesAfterFirst := v.FreeFrames

	pw2 := &cowProg{v: v}
	pw2.touches = append(pw2.touches, struct {
		addr  uint64
		write bool
	}{0x7000, true})
	t2 := k.NewThread(core.ThreadSpec{Name: "w2", SpaceID: 2, Program: pw2})
	k.Setrun(t2)
	k.Run(0)

	if v.CowBreaks != 2 {
		t.Fatalf("CowBreaks = %d", v.CowBreaks)
	}
	// The second break found refs==1 and privatized without a new frame.
	if v.FreeFrames != framesAfterFirst {
		t.Fatalf("last-mapper break consumed a frame: %d -> %d", framesAfterFirst, v.FreeFrames)
	}
}

func TestSharedEvictionFreesFrameOnlyAtLastRef(t *testing.T) {
	// Fill a tiny machine, forcing the daemon to evict shared pages, and
	// check frame accounting stays consistent.
	k, v := newCowKernel(t, 8)
	v.NewSpace(1)
	v.NewSpace(2)
	for i := 0; i < 3; i++ {
		v.Touch(1, uint64(0x1000*(i+1)))
	}
	v.ShareCopyOnWrite(env(k), 1, 2, 0x1000, 3)

	// A greedy faulter churns through fresh pages, forcing evictions of
	// the shared ones.
	var touches []struct {
		addr  uint64
		write bool
	}
	for i := 0; i < 12; i++ {
		touches = append(touches, struct {
			addr  uint64
			write bool
		}{uint64(0x100000 + i*vm.PageSize), false})
	}
	p := &cowProg{v: v, touches: touches}
	th := k.NewThread(core.ThreadSpec{Name: "churn", SpaceID: 1, Program: p})
	k.Setrun(th)
	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("churn state = %v", th.State)
	}
	// Conservation: frames are either free or backing resident pages
	// (each shared frame counted once).
	type sh = struct{}
	backing := 0
	seen := map[interface{}]bool{}
	_ = seen
	for _, spID := range []int{1, 2} {
		sp := v.SpaceOf(&core.Thread{SpaceID: spID})
		backing += sp.ResidentPages() - sp.SharedPages()
	}
	// Shared pages back one frame per share group; count distinct groups
	// via SharedPages of the source only (groups span exactly 2 spaces
	// here).
	sp1 := v.SpaceOf(&core.Thread{SpaceID: 1})
	backing += sp1.SharedPages()
	if v.FreeFrames+backing > v.TotalFrames {
		t.Fatalf("frames overcommitted: free=%d backing=%d total=%d",
			v.FreeFrames, backing, v.TotalFrames)
	}
}

func TestShareUnregisteredSpacePanics(t *testing.T) {
	k, v := newCowKernel(t, 8)
	v.NewSpace(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	v.ShareCopyOnWrite(env(k), 1, 99, 0x1000, 1)
}
