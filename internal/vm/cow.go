package vm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
)

// share is the bookkeeping for one physical frame mapped copy-on-write
// into multiple address spaces. The frame is released when the last
// mapping disappears.
type share struct {
	refs int
}

// pageEntry describes one resident virtual page of a space.
type pageEntry struct {
	// shared is non-nil while the page is a copy-on-write mapping of a
	// frame other spaces may also map.
	shared *share
}

// cowMapCost is the per-page cost of establishing a copy-on-write
// mapping: a map entry write plus protection downgrade in both spaces.
var cowMapCost = machine.Cost{Instrs: 60, Loads: 12, Stores: 18}

// cowBreakCost is the fixed cost of resolving a write fault on a shared
// page (protection fixup, share bookkeeping); the page copy itself is
// charged by size.
var cowBreakCost = machine.Cost{Instrs: 80, Loads: 20, Stores: 20}

// ShareCopyOnWrite maps n pages starting at addr from the source space
// into the destination space copy-on-write: both spaces see the same
// physical frames, write-protected; the first store to a shared page
// copies it. Pages not resident in the source are skipped (they will
// fault in privately). Returns the number of pages shared. Callable from
// a kernel path; charges per page.
func (v *VM) ShareCopyOnWrite(e *core.Env, srcID, dstID int, addr uint64, n int) int {
	src := v.spaces[srcID]
	dst := v.spaces[dstID]
	if src == nil || dst == nil {
		panic(fmt.Sprintf("vm: ShareCopyOnWrite between unregistered spaces %d -> %d", srcID, dstID))
	}
	shared := 0
	for i := 0; i < n; i++ {
		page := (addr >> PageShift) + uint64(i)
		entry := src.resident[page]
		if entry == nil {
			continue
		}
		if _, already := dst.resident[page]; already {
			continue
		}
		e.Charge(cowMapCost)
		if entry.shared == nil {
			entry.shared = &share{refs: 1}
		}
		entry.shared.refs++
		dst.resident[page] = &pageEntry{shared: entry.shared}
		v.fifo = append(v.fifo, pageRef{space: dst, page: page})
		v.CowShares++
		shared++
	}
	return shared
}

// SharedPages counts resident pages of a space that are currently
// copy-on-write mappings.
func (s *Space) SharedPages() int {
	n := 0
	for _, entry := range s.resident {
		if entry.shared != nil && entry.shared.refs > 1 {
			n++
		}
	}
	return n
}

// breakCow resolves a write fault on a shared page in the current
// thread's space. It either privatizes in place (last reference) or
// copies the page to a fresh frame, possibly blocking for one. Terminal.
func (v *VM) breakCow(e *core.Env, sp *Space, page uint64, entry *pageEntry) {
	t := e.Cur()
	e.Charge(cowBreakCost)
	if entry.shared.refs == 1 {
		// Last mapper: just take the frame private.
		entry.shared = nil
		v.CowBreaks++
		v.K.ThreadExceptionReturn(e)
	}
	if v.FreeFrames == 0 {
		// Need a frame for the private copy: wait and retry the fault.
		v.FrameWaits++
		v.waiters = append(v.waiters, t)
		v.wakeDaemon()
		t.Scratch.PutWord(0, uint32(page))
		t.Scratch.PutWord(1, 1) // write fault
		t.State = core.StateWaiting
		t.WaitLabel = "vm: cow frame wait"
		v.K.Block(e, blockReasonFault, v.ContFaultRetry,
			func(e2 *core.Env) { v.HandleFault(e2, page<<PageShift, true) },
			160, "vm-cow-frame-wait")
	}
	// Copy the page into a private frame.
	v.FreeFrames--
	if v.FreeFrames < v.LowWater {
		v.wakeDaemon()
	}
	e.Charge(machine.CopyBytes(PageSize))
	entry.shared.refs--
	entry.shared = nil
	v.CowBreaks++
	v.K.ThreadExceptionReturn(e)
}
