// Package vm is the virtual-memory substrate of the simulated kernel:
// per-task address spaces, a resident-page set over a fixed pool of
// physical frames, a simulated paging disk, and a pageout daemon (an
// internal kernel thread written in the paper's §2.2 tail-recursive
// continuation style).
//
// Fault handling follows §2.5:
//
//   - a user-level fault on a non-resident page blocks the faulting
//     thread with a continuation that maps the new page and resumes the
//     thread at user level, so faulting threads consume no kernel stacks;
//
//   - a kernel-mode fault preserves the thread's kernel state and stack —
//     the process-model safety net — because a thread can fault anywhere
//     in the kernel and generating a continuation there would be
//     impractical.
package vm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dev"
	"repro/internal/machine"
	"repro/internal/stats"
)

// PageSize is the machine page size (both evaluation machines use 4 KB).
const PageSize = 4096

// PageShift converts addresses to page numbers.
const PageShift = 12

// DefaultDiskLatency is the simulated page-in latency: a late-1980s SCSI
// disk needs on the order of 20 ms for a seek plus a page transfer.
const DefaultDiskLatency = machine.Duration(20 * 1000 * 1000)

// faultSoftCost is the machine-independent work of looking up a fault:
// validating the address, walking the map entries, checking protections.
var faultSoftCost = machine.Cost{Instrs: 120, Loads: 30, Stores: 8}

// faultMapCost is the work of entering a new page into the pmap.
var faultMapCost = machine.Cost{Instrs: 90, Loads: 15, Stores: 20}

// evictCost is the per-page work of the pageout daemon.
var evictCost = machine.Cost{Instrs: 150, Loads: 40, Stores: 25}

// Space is one task's address space: the set of resident virtual pages.
// The simulator does not store page contents; residency, sharing and
// mapping cost are what the paper's paths exercise.
type Space struct {
	ID       int
	resident map[uint64]*pageEntry
}

// Resident reports whether the page holding addr is mapped.
func (s *Space) Resident(addr uint64) bool {
	return s.resident[addr>>PageShift] != nil
}

// ResidentPages counts mapped pages.
func (s *Space) ResidentPages() int { return len(s.resident) }

// pageRef identifies one resident page for the eviction queue.
type pageRef struct {
	space *Space
	page  uint64
}

// VM is the virtual-memory subsystem.
type VM struct {
	K *core.Kernel

	// TotalFrames and FreeFrames describe the physical page pool.
	TotalFrames int
	FreeFrames  int

	// DiskLatency is the simulated page-in/page-out time.
	DiskLatency machine.Duration

	// Disk, when set, is the paging disk in the device subsystem: page-ins
	// become queued device requests completed by a disk interrupt and the
	// io_done thread, so concurrent faulters contend for the one spindle.
	// When nil the legacy flat-latency path is used (each page-in is an
	// independent timer), preserving the pre-device behavior for
	// comparison.
	Disk *dev.Device

	// LowWater and HighWater bound the pageout daemon: it wakes below
	// LowWater free frames and evicts until HighWater are free.
	LowWater  int
	HighWater int

	spaces map[int]*Space

	// fifo is the eviction queue of resident pages, oldest first.
	fifo []pageRef

	// waiters are threads blocked until a frame frees up.
	waiters []*core.Thread

	// Daemon is the pageout kernel thread.
	Daemon *core.Thread

	// ContFaultContinue is the continuation a faulting thread blocks
	// with while its page comes in from disk; exported so tests and
	// recognition sites can compare against it.
	ContFaultContinue *core.Continuation

	// ContFaultRetry re-runs the fault after waiting for a free frame.
	ContFaultRetry *core.Continuation

	contPageout *core.Continuation

	// Counters.
	FastFaults   uint64 // page already resident
	DiskFaults   uint64 // waited for the disk
	FrameWaits   uint64 // waited for a free frame
	KernelFaults uint64 // kernel-mode faults (process model)
	Evictions    uint64
	CowShares    uint64 // pages mapped copy-on-write
	CowBreaks    uint64 // write faults that resolved a shared page
}

// blockReasonFault names the Table 1 row page-fault blocks land in.
const blockReasonFault = stats.BlockPageFault

// Config sizes the VM subsystem.
type Config struct {
	// Frames is the physical page pool size (default 2048 = 8 MB).
	Frames int
	// DiskLatency overrides DefaultDiskLatency when nonzero.
	DiskLatency machine.Duration
	// Disk routes page-ins and page-outs through a device-subsystem disk
	// (see VM.Disk); nil keeps the legacy flat-latency path.
	Disk *dev.Device
}

// New creates the VM subsystem, installs its fault handler on the kernel,
// and creates (but does not start) the pageout daemon. Call StartDaemon
// once the scheduler is in place.
func New(k *core.Kernel, cfg Config) *VM {
	frames := cfg.Frames
	if frames <= 0 {
		frames = 2048
	}
	lat := cfg.DiskLatency
	if lat == 0 {
		lat = DefaultDiskLatency
	}
	v := &VM{
		K:           k,
		TotalFrames: frames,
		FreeFrames:  frames,
		DiskLatency: lat,
		Disk:        cfg.Disk,
		LowWater:    frames / 16,
		HighWater:   frames / 8,
		spaces:      make(map[int]*Space),
	}
	if v.LowWater < 2 {
		v.LowWater = 2
	}
	if v.HighWater <= v.LowWater {
		v.HighWater = v.LowWater + 2
	}

	v.ContFaultContinue = core.NewContinuation("vm_fault_continue", v.faultContinue)
	v.ContFaultRetry = core.NewContinuation("vm_fault_retry", v.faultRetry)
	v.contPageout = core.NewContinuation("pageout_continue", v.pageoutLoop)

	k.HandleFault = v.HandleFault
	v.Daemon = k.NewThread(core.ThreadSpec{
		Name:     "pageout",
		SpaceID:  0,
		Internal: true,
		Priority: 30,
		Start:    v.contPageout,
		StartPM:  v.pageoutStepPM(k),
	})
	return v
}

// pageoutStepPM is the process-model start step of the daemon, used when
// the kernel does not support continuations.
func (v *VM) pageoutStepPM(k *core.Kernel) func(*core.Env) {
	if k.UseContinuations {
		return nil
	}
	return func(e *core.Env) { v.pageoutLoop(e) }
}

// NewSpace registers an address space for a task.
func (v *VM) NewSpace(id int) *Space {
	if _, dup := v.spaces[id]; dup {
		panic(fmt.Sprintf("vm: duplicate space %d", id))
	}
	s := &Space{ID: id, resident: make(map[uint64]*pageEntry)}
	v.spaces[id] = s
	return s
}

// SpaceOf returns the space a thread runs in.
func (v *VM) SpaceOf(t *core.Thread) *Space {
	s := v.spaces[t.SpaceID]
	if s == nil {
		panic(fmt.Sprintf("vm: %v runs in unregistered space %d", t, t.SpaceID))
	}
	return s
}

// HandleFault services a user-level page fault on the current thread.
// Installed as the kernel's fault handler; terminal.
func (v *VM) HandleFault(e *core.Env, addr uint64, write bool) {
	e.Charge(faultSoftCost)
	t := e.Cur()
	sp := v.SpaceOf(t)
	if entry := sp.resident[addr>>PageShift]; entry != nil {
		if write && entry.shared != nil {
			// A store to a copy-on-write page: resolve the sharing.
			v.breakCow(e, sp, addr>>PageShift, entry)
		}
		// The page arrived while we trapped (or the program re-touched a
		// mapped page): nothing to wait for.
		v.FastFaults++
		v.K.ThreadExceptionReturn(e)
	}
	v.fault(e, addr, write)
}

// fault starts a page-in for addr, blocking the current thread. Also the
// body of the retry continuation. Terminal.
func (v *VM) fault(e *core.Env, addr uint64, write bool) {
	t := e.Cur()
	page := addr >> PageShift
	wflag := uint32(0)
	if write {
		wflag = 1
	}
	if v.FreeFrames == 0 {
		// Wait for the pageout daemon to free a frame, then retry the
		// whole fault.
		v.FrameWaits++
		v.waiters = append(v.waiters, t)
		v.wakeDaemon()
		t.Scratch.PutWord(0, uint32(page))
		t.Scratch.PutWord(1, wflag)
		t.State = core.StateWaiting
		t.WaitLabel = "vm: frame wait"
		v.K.Block(e, stats.BlockPageFault, v.ContFaultRetry,
			func(e2 *core.Env) { v.HandleFault(e2, page<<PageShift, write) }, 160, "vm-frame-wait")
	}

	// Claim a frame and start the disk read.
	v.FreeFrames--
	if v.FreeFrames < v.LowWater {
		v.wakeDaemon()
	}
	v.DiskFaults++
	sp := v.SpaceOf(t)
	if v.Disk != nil {
		// Queue the read on the paging disk. The request completes in a
		// disk interrupt; the io_done thread maps the page and (in the
		// continuation kernel) hands its stack straight to the faulter,
		// recognizing vm_fault_continue. Concurrent faulters queue behind
		// each other on the one device — a pager storm sees the spindle.
		v.Disk.Submit(&dev.Request{
			Label:   "page-in",
			Bytes:   PageSize,
			Latency: v.DiskLatency,
			Complete: func(e2 *core.Env) {
				sp.resident[page] = &pageEntry{}
				v.fifo = append(v.fifo, pageRef{space: sp, page: page})
			},
			Waiter: t,
			Expect: v.ContFaultContinue,
			Inline: func(e2 *core.Env) { v.faultContinue(e2) },
		})
	} else {
		v.K.Clock.After(v.DiskLatency, "page-in", func() {
			// Disk interrupt: the page is in memory; map it and wake the
			// faulter. Mapping cost is charged in the faulter's
			// continuation.
			sp.resident[page] = &pageEntry{}
			v.fifo = append(v.fifo, pageRef{space: sp, page: page})
			v.K.Setrun(t)
		})
	}
	t.Scratch.PutWord(0, uint32(page))
	t.Scratch.PutWord(1, wflag)
	t.State = core.StateWaiting
	t.WaitLabel = "vm: page-in"
	v.K.Block(e, stats.BlockPageFault, v.ContFaultContinue,
		func(e2 *core.Env) { v.faultContinue(e2) }, 160, "vm-page-in")
}

// faultContinue runs when the page-in completes: enter the page into the
// pmap and resume the thread at user level. Terminal.
func (v *VM) faultContinue(e *core.Env) {
	e.Charge(faultMapCost)
	v.K.ThreadExceptionReturn(e)
}

// faultRetry re-runs the fault after a frame wait. Terminal.
func (v *VM) faultRetry(e *core.Env) {
	t := e.Cur()
	page := uint64(t.Scratch.Word(0))
	v.HandleFault(e, page<<PageShift, t.Scratch.Word(1) != 0)
}

// KernelFault services a page fault taken in kernel mode: the thread's
// kernel state and stack are preserved — the process model is the safety
// net here even in the continuation kernel (§2.5). resume continues the
// interrupted kernel path. Terminal.
func (v *VM) KernelFault(e *core.Env, frameBytes int, resume func(*core.Env)) {
	e.Charge(faultSoftCost)
	v.KernelFaults++
	t := e.Cur()
	if v.FreeFrames > 0 {
		v.FreeFrames--
		if v.FreeFrames < v.LowWater {
			v.wakeDaemon()
		}
	}
	v.K.Clock.After(v.DiskLatency, "kernel-page-in", func() {
		v.K.Setrun(t)
	})
	t.State = core.StateWaiting
	t.WaitLabel = "vm: kernel fault"
	v.K.Block(e, stats.BlockKernelFault, nil, func(e2 *core.Env) {
		e2.Charge(faultMapCost)
		resume(e2)
	}, frameBytes, "kernel-fault")
}

// wakeDaemon makes the pageout thread runnable if it is sleeping.
func (v *VM) wakeDaemon() {
	if v.Daemon.State == core.StateWaiting {
		v.K.Setrun(v.Daemon)
	}
}

// pageoutLoop is the daemon's work loop, §2.2 style: do work, then block
// with this same continuation, achieving the infinite loop through tail
// recursion. Terminal.
func (v *VM) pageoutLoop(e *core.Env) {
	for v.FreeFrames < v.HighWater && len(v.fifo) > 0 {
		ref := v.fifo[0]
		v.fifo = v.fifo[1:]
		entry := ref.space.resident[ref.page]
		if entry == nil {
			continue // already unmapped
		}
		delete(ref.space.resident, ref.page)
		e.Charge(evictCost)
		v.Evictions++
		if v.Disk != nil {
			// Write the dirty page behind the eviction: fire-and-forget —
			// the daemon does not wait, but the write occupies the spindle
			// and queues against concurrent page-ins.
			v.Disk.Submit(&dev.Request{
				Label:   "page-out",
				Bytes:   PageSize,
				Latency: v.DiskLatency,
			})
		}
		if entry.shared != nil {
			// Unmapping one copy-on-write mapping frees the frame only
			// when the last mapper goes.
			entry.shared.refs--
			if entry.shared.refs > 0 {
				continue
			}
		}
		v.FreeFrames++
	}
	// Frames freed: retry the frame-waiters.
	if v.FreeFrames > 0 && len(v.waiters) > 0 {
		n := len(v.waiters)
		if n > v.FreeFrames {
			n = v.FreeFrames
		}
		for _, t := range v.waiters[:n] {
			v.K.Setrun(t)
		}
		v.waiters = append(v.waiters[:0], v.waiters[n:]...)
	}
	d := e.Cur()
	d.State = core.StateWaiting
	d.WaitLabel = "pageout: idle"
	v.K.Block(e, stats.BlockInternal, v.contPageout,
		func(e2 *core.Env) { v.pageoutLoop(e2) }, 256, "pageout-wait")
}

// Touch marks a page resident without a fault, for tests and workload
// setup (pre-faulted working sets).
func (v *VM) Touch(spaceID int, addr uint64) {
	sp := v.spaces[spaceID]
	if sp == nil {
		panic(fmt.Sprintf("vm: Touch on unregistered space %d", spaceID))
	}
	page := addr >> PageShift
	if sp.resident[page] != nil {
		return
	}
	if v.FreeFrames == 0 {
		panic("vm: Touch with no free frames")
	}
	v.FreeFrames--
	sp.resident[page] = &pageEntry{}
	v.fifo = append(v.fifo, pageRef{space: sp, page: page})
}

// ResidentTotal counts resident pages across all spaces.
func (v *VM) ResidentTotal() int {
	n := 0
	for _, s := range v.spaces {
		n += len(s.resident)
	}
	return n
}
