package vm_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/vm"
)

// faultProg touches a list of addresses, faulting on each, then exits.
type faultProg struct {
	addrs []uint64
	pos   int
	v     *vm.VM
	space int
}

func (p *faultProg) Next(e *core.Env, t *core.Thread) core.Action {
	for p.pos < len(p.addrs) {
		a := p.addrs[p.pos]
		if !p.v.SpaceOf(t).Resident(a) {
			return core.Action{Kind: core.ActFault, Addr: a}
		}
		p.pos++
	}
	return core.Exit()
}

func newVMKernel(t *testing.T, useCont bool, frames int) (*core.Kernel, *vm.VM) {
	t.Helper()
	k := core.NewKernel(core.Config{
		Model:            machine.NewCostModel(machine.ArchDS3100),
		UseContinuations: useCont,
	})
	k.Sched = sched.New(0)
	v := vm.New(k, vm.Config{Frames: frames, DiskLatency: 1000 * 1000})
	return k, v
}

func TestFaultBringsPageIn(t *testing.T) {
	k, v := newVMKernel(t, true, 64)
	v.NewSpace(1)
	p := &faultProg{addrs: []uint64{0x1000, 0x2000, 0x1000}, v: v, space: 1}
	th := k.NewThread(core.ThreadSpec{Name: "faulter", SpaceID: 1, Program: p})
	k.Setrun(th)
	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("state = %v", th.State)
	}
	if v.DiskFaults != 2 {
		t.Fatalf("DiskFaults = %d, want 2 (third touch is resident)", v.DiskFaults)
	}
	if got := v.SpaceOf(th).ResidentPages(); got != 2 {
		t.Fatalf("resident pages = %d", got)
	}
	if k.Stats.BlocksWithDiscard[stats.BlockPageFault] != 2 {
		t.Fatalf("page fault discards = %d", k.Stats.BlocksWithDiscard[stats.BlockPageFault])
	}
}

func TestFaultingThreadIsStackless(t *testing.T) {
	k, v := newVMKernel(t, true, 64)
	v.NewSpace(1)
	p := &faultProg{addrs: []uint64{0x5000}, v: v, space: 1}
	th := k.NewThread(core.ThreadSpec{Name: "faulter", SpaceID: 1, Program: p})
	k.Setrun(th)
	for i := 0; i < 200 && th.State != core.StateWaiting; i++ {
		if !k.Step() {
			break
		}
	}
	if th.State != core.StateWaiting {
		t.Fatalf("state = %v", th.State)
	}
	if th.HasStack() {
		t.Fatal("faulting thread kept a kernel stack while waiting for the disk")
	}
	if !th.BlockedWith(v.ContFaultContinue) {
		t.Fatalf("blocked with %v, want vm_fault_continue", th.Cont)
	}
	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("final state = %v", th.State)
	}
}

func TestFaultProcessModelKeepsStack(t *testing.T) {
	k, v := newVMKernel(t, false, 64)
	v.NewSpace(1)
	p := &faultProg{addrs: []uint64{0x5000}, v: v, space: 1}
	th := k.NewThread(core.ThreadSpec{Name: "faulter", SpaceID: 1, Program: p})
	k.Setrun(th)
	for i := 0; i < 200 && th.State != core.StateWaiting; i++ {
		if !k.Step() {
			break
		}
	}
	if !th.HasStack() || th.Cont != nil {
		t.Fatal("process-model faulter should keep its stack")
	}
	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("final state = %v", th.State)
	}
}

func TestPageoutDaemonFreesFrames(t *testing.T) {
	// 8 frames, a thread that touches 20 pages: the daemon must evict.
	k, v := newVMKernel(t, true, 8)
	v.NewSpace(1)
	var addrs []uint64
	for i := 0; i < 20; i++ {
		addrs = append(addrs, uint64(i+1)<<vm.PageShift)
	}
	p := &faultProg{addrs: addrs, v: v, space: 1}
	th := k.NewThread(core.ThreadSpec{Name: "pig", SpaceID: 1, Program: p})
	k.Setrun(th)
	k.Run(0)
	if th.State != core.StateHalted {
		t.Fatalf("state = %v (frame starvation?)", th.State)
	}
	if v.Evictions == 0 {
		t.Fatal("pageout daemon never evicted")
	}
	if k.Stats.BlocksWithDiscard[stats.BlockInternal] == 0 {
		t.Fatal("daemon blocks not tallied as internal")
	}
	// Frame accounting balances: free + resident + waiter-claims = total.
	if v.FreeFrames+v.ResidentTotal() > v.TotalFrames {
		t.Fatalf("frames overcommitted: free=%d resident=%d total=%d",
			v.FreeFrames, v.ResidentTotal(), v.TotalFrames)
	}
}

func TestManyFaultersFewStacks(t *testing.T) {
	// The paper's space claim: many threads blocked in page faults hold
	// no kernel stacks.
	k, v := newVMKernel(t, true, 256)
	const n = 30
	var threads []*core.Thread
	for i := 0; i < n; i++ {
		v.NewSpace(i + 1)
		p := &faultProg{addrs: []uint64{0x10000}, v: v, space: i + 1}
		th := k.NewThread(core.ThreadSpec{Name: "f", SpaceID: i + 1, Program: p})
		threads = append(threads, th)
		k.Setrun(th)
	}
	// Run until all are blocked on the disk.
	for i := 0; i < 10000; i++ {
		allBlocked := true
		for _, th := range threads {
			if th.State != core.StateWaiting {
				allBlocked = false
			}
		}
		if allBlocked {
			break
		}
		if !k.Step() {
			break
		}
	}
	if got := k.Stacks.InUse(); got != 0 {
		t.Fatalf("stacks in use with all faulters blocked = %d, want 0", got)
	}
	k.Run(0)
	for _, th := range threads {
		if th.State != core.StateHalted {
			t.Fatalf("%v state = %v", th, th.State)
		}
	}
}

func TestKernelFaultUsesProcessModel(t *testing.T) {
	k, v := newVMKernel(t, true, 64)
	v.NewSpace(1)
	var resumed bool
	prog := core.ProgramFunc(func(e *core.Env, t *core.Thread) core.Action {
		if resumed {
			return core.Exit()
		}
		return core.Syscall("touch_kernel", func(e *core.Env) {
			// A syscall path faults on pageable kernel memory.
			v.KernelFault(e, 200, func(e2 *core.Env) {
				resumed = true
				e2.K.ThreadSyscallReturn(e2, 0)
			})
		})
	})
	th := k.NewThread(core.ThreadSpec{Name: "syscaller", SpaceID: 1, Program: prog})
	k.Setrun(th)

	for i := 0; i < 200 && th.State != core.StateWaiting; i++ {
		if !k.Step() {
			break
		}
	}
	if !th.HasStack() {
		t.Fatal("kernel-mode fault must preserve the stack (process model)")
	}
	if th.Cont != nil {
		t.Fatal("kernel-mode fault must not use a continuation")
	}
	k.Run(0)
	if !resumed || th.State != core.StateHalted {
		t.Fatalf("resumed=%v state=%v", resumed, th.State)
	}
	if k.Stats.BlocksWithoutDiscard[stats.BlockKernelFault] != 1 {
		t.Fatalf("kernel fault not tallied in the no-discard row: %+v", k.Stats.BlocksWithoutDiscard)
	}
	if v.KernelFaults != 1 {
		t.Fatalf("KernelFaults = %d", v.KernelFaults)
	}
}

func TestFrameWaitAndRetry(t *testing.T) {
	// 4 frames (low water clamps to 2): two greedy threads contending.
	k, v := newVMKernel(t, true, 4)
	var threads []*core.Thread
	for i := 0; i < 2; i++ {
		v.NewSpace(i + 1)
		var addrs []uint64
		for j := 0; j < 6; j++ {
			addrs = append(addrs, uint64(j+1)<<vm.PageShift)
		}
		p := &faultProg{addrs: addrs, v: v, space: i + 1}
		th := k.NewThread(core.ThreadSpec{Name: "greedy", SpaceID: i + 1, Program: p})
		threads = append(threads, th)
		k.Setrun(th)
	}
	k.Run(0)
	for _, th := range threads {
		if th.State != core.StateHalted {
			t.Fatalf("%v state = %v", th, th.State)
		}
	}
	if v.Evictions == 0 {
		t.Fatal("no evictions under frame pressure")
	}
}

func TestTouchPreloadsWorkingSet(t *testing.T) {
	k, v := newVMKernel(t, true, 16)
	v.NewSpace(1)
	v.Touch(1, 0x3000)
	v.Touch(1, 0x3000) // idempotent
	if v.FreeFrames != 15 {
		t.Fatalf("FreeFrames = %d", v.FreeFrames)
	}
	p := &faultProg{addrs: []uint64{0x3000}, v: v, space: 1}
	th := k.NewThread(core.ThreadSpec{Name: "warm", SpaceID: 1, Program: p})
	k.Setrun(th)
	k.Run(0)
	if v.DiskFaults != 0 {
		t.Fatalf("warm touch went to disk: %d", v.DiskFaults)
	}
}

func TestResidentFaultIsFast(t *testing.T) {
	k, v := newVMKernel(t, true, 16)
	v.NewSpace(1)
	v.Touch(1, 0x8000)
	prog := core.ProgramFunc(func(e *core.Env, t *core.Thread) core.Action {
		if t.KernelEntries > 0 {
			return core.Exit()
		}
		return core.Action{Kind: core.ActFault, Addr: 0x8000}
	})
	th := k.NewThread(core.ThreadSpec{Name: "fast", SpaceID: 1, Program: prog})
	k.Setrun(th)
	k.Run(0)
	if v.FastFaults != 1 || v.DiskFaults != 0 {
		t.Fatalf("fast=%d disk=%d", v.FastFaults, v.DiskFaults)
	}
	// A fast fault never blocks.
	if k.Stats.BlocksWithDiscard[stats.BlockPageFault] != 0 {
		t.Fatal("fast fault blocked")
	}
}

func TestDuplicateSpacePanics(t *testing.T) {
	k, v := newVMKernel(t, true, 16)
	_ = k
	v.NewSpace(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate space did not panic")
		}
	}()
	v.NewSpace(1)
}

func TestUnregisteredSpacePanics(t *testing.T) {
	k, v := newVMKernel(t, true, 16)
	th := k.NewThread(core.ThreadSpec{Name: "orphan", SpaceID: 9})
	defer func() {
		if recover() == nil {
			t.Fatal("unregistered space did not panic")
		}
	}()
	v.SpaceOf(th)
}
