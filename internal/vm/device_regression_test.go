package vm_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/stats"
)

// serialFaulter touches n distinct pages one at a time, so the paging
// disk never sees more than one outstanding request (queue depth 1).
func serialFaulter(sys *kern.System, n int) *core.Thread {
	task := sys.NewTask("storm")
	pos := 0
	prog := core.ProgramFunc(func(e *core.Env, th *core.Thread) core.Action {
		if pos >= n {
			return core.Exit()
		}
		pos++
		return core.Action{Kind: core.ActFault, Addr: uint64(0x100000 + pos*0x1000)}
	})
	return task.NewThread("faulter", prog, 10)
}

// TestPagerStormLegacyVersusDevice is the regression gate for the disk
// device rewiring: a serial pager storm must behave identically whether
// page-ins go through the legacy flat-latency path or the queued disk
// device at queue depth 1 — same faults, same residency, same blocks —
// and the device path's added interrupt overhead must be negligible
// against the 20 ms disk.
func TestPagerStormLegacyVersusDevice(t *testing.T) {
	const pages = 60
	boot := func(legacy bool) *kern.System {
		return kern.New(kern.Config{
			Flavor: kern.MK40, Arch: machine.ArchDS3100,
			Frames: 512, DisableCallout: true, LegacyFlatDisk: legacy,
		})
	}

	run := func(legacy bool) *kern.System {
		sys := boot(legacy)
		sys.Start(serialFaulter(sys, pages))
		sys.Run(0)
		return sys
	}

	legacy := run(true)
	device := run(false)

	if legacy.VM.DiskFaults != device.VM.DiskFaults {
		t.Fatalf("disk faults: legacy %d, device %d",
			legacy.VM.DiskFaults, device.VM.DiskFaults)
	}
	if legacy.VM.DiskFaults != pages {
		t.Fatalf("disk faults = %d, want %d", legacy.VM.DiskFaults, pages)
	}
	if legacy.VM.FastFaults != device.VM.FastFaults {
		t.Fatalf("fast faults: legacy %d, device %d",
			legacy.VM.FastFaults, device.VM.FastFaults)
	}
	if legacy.VM.ResidentTotal() != device.VM.ResidentTotal() {
		t.Fatalf("resident pages: legacy %d, device %d",
			legacy.VM.ResidentTotal(), device.VM.ResidentTotal())
	}
	lb := legacy.K.Stats.BlocksWithDiscard[stats.BlockPageFault]
	db := device.K.Stats.BlocksWithDiscard[stats.BlockPageFault]
	if lb != db {
		t.Fatalf("page-fault blocks: legacy %d, device %d", lb, db)
	}

	// Serial faulting means the disk never queues.
	if hw := device.Disk.QueueHighWater; hw != 1 {
		t.Fatalf("disk queue high-water = %d, want 1 for a serial storm", hw)
	}
	if device.Disk.Requests != pages {
		t.Fatalf("disk requests = %d, want %d", device.Disk.Requests, pages)
	}
	if device.K.Stats.Interrupts < pages {
		t.Fatalf("interrupts = %d, want >= %d", device.K.Stats.Interrupts, pages)
	}

	// The device path adds interrupt entry/exit and io_done bookkeeping
	// per fault — microseconds against a 20 ms disk.
	lt, dt := float64(legacy.K.Clock.Now()), float64(device.K.Clock.Now())
	if diff := (dt - lt) / lt; diff < 0 || diff > 0.02 {
		t.Fatalf("elapsed drifted %.4f%% (legacy %.3fms, device %.3fms)",
			100*diff, lt/1e6, dt/1e6)
	}
}

// TestPagerStormQueueing is the other half of the rewiring's point:
// concurrent faulters on the device path contend for the one spindle,
// which the flat-latency path cannot express.
func TestPagerStormQueueing(t *testing.T) {
	sys := kern.New(kern.Config{
		Flavor: kern.MK40, Arch: machine.ArchDS3100,
		Frames: 512, DisableCallout: true,
	})
	for i := 0; i < 4; i++ {
		sys.Start(serialFaulter(sys, 20))
	}
	sys.Run(0)

	if hw := sys.Disk.QueueHighWater; hw < 2 {
		t.Fatalf("disk queue high-water = %d, want >= 2 with 4 concurrent faulters", hw)
	}
	if sys.VM.DiskFaults != 80 {
		t.Fatalf("disk faults = %d, want 80", sys.VM.DiskFaults)
	}
}
