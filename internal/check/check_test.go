package check_test

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/machine"
)

func op(client int, kind check.OpKind, key, val uint64, found bool, inv, ret machine.Time, ok bool) check.Op {
	return check.Op{Client: client, Kind: kind, Key: key, Val: val, Found: found,
		Invoke: inv, Return: ret, Ok: ok}
}

func TestLinearizableSequential(t *testing.T) {
	h := []check.Op{
		op(0, check.OpGet, 1, 0, false, 0, 10, true), // read before any write: absent
		op(0, check.OpPut, 1, 7, false, 20, 30, true),
		op(0, check.OpGet, 1, 7, true, 40, 50, true),
		op(0, check.OpPut, 1, 9, false, 60, 70, true),
		op(0, check.OpGet, 1, 9, true, 80, 90, true),
	}
	r := check.Linearizable(h)
	if !r.Linearizable || r.Keys != 1 || r.Ops != 5 {
		t.Fatalf("result = %+v (%s)", r, r)
	}
}

// A concurrent put/get pair where the get sees the new value is legal
// (the put linearizes first inside the overlap); seeing the old value is
// equally legal.
func TestLinearizableConcurrentOverlap(t *testing.T) {
	for _, sees := range []struct {
		val   uint64
		found bool
	}{{7, true}, {0, false}} {
		h := []check.Op{
			op(0, check.OpPut, 1, 7, false, 10, 40, true),
			op(1, check.OpGet, 1, sees.val, sees.found, 20, 30, true),
		}
		if r := check.Linearizable(h); !r.Linearizable {
			t.Fatalf("overlapping get seeing %v should pass: %s", sees, r)
		}
	}
}

// A stale read after a put's return is a violation: put returned at 30,
// get invoked at 40 yet still saw the old state.
func TestStaleReadFlagged(t *testing.T) {
	h := []check.Op{
		op(0, check.OpPut, 1, 7, false, 10, 30, true),
		op(1, check.OpGet, 1, 0, false, 40, 50, true),
	}
	r := check.Linearizable(h)
	if r.Linearizable {
		t.Fatal("stale read not flagged")
	}
	if len(r.Violations) != 1 || r.Violations[0].Key != 1 {
		t.Fatalf("violations = %+v", r.Violations)
	}
	if !strings.Contains(r.String(), "NOT linearizable") {
		t.Fatalf("String() = %q", r.String())
	}
}

// A lost acked write: put(7) acked, a later put(9) acked, then a read
// sees 7 again after having seen 9 — the register went backwards.
func TestLostWriteFlagged(t *testing.T) {
	h := []check.Op{
		op(0, check.OpPut, 1, 7, false, 0, 10, true),
		op(0, check.OpPut, 1, 9, false, 20, 30, true),
		op(1, check.OpGet, 1, 9, true, 40, 50, true),
		op(1, check.OpGet, 1, 7, true, 60, 70, true),
	}
	if r := check.Linearizable(h); r.Linearizable {
		t.Fatal("regressed read not flagged")
	}
}

// An indeterminate put may take effect (a later read of its value is
// fine) or may never have happened (a later read of the old value is
// also fine).
func TestIndeterminatePut(t *testing.T) {
	base := []check.Op{
		op(0, check.OpPut, 1, 7, false, 0, 10, true),
		op(0, check.OpPut, 1, 9, false, 20, 0, false), // timed out
	}
	applied := append(append([]check.Op(nil), base...),
		op(1, check.OpGet, 1, 9, true, 40, 50, true))
	if r := check.Linearizable(applied); !r.Linearizable {
		t.Fatalf("indeterminate put observed should pass: %s", r)
	}
	vanished := append(append([]check.Op(nil), base...),
		op(1, check.OpGet, 1, 7, true, 40, 50, true))
	if r := check.Linearizable(vanished); !r.Linearizable {
		t.Fatalf("indeterminate put vanished should pass: %s", r)
	}
	// But it cannot half-happen: observed then gone is a violation.
	flip := append(append([]check.Op(nil), base...),
		op(1, check.OpGet, 1, 9, true, 40, 50, true),
		op(1, check.OpGet, 1, 7, true, 60, 70, true))
	if r := check.Linearizable(flip); r.Linearizable {
		t.Fatal("half-applied indeterminate put not flagged")
	}
}

// An indeterminate put cannot take effect before its invocation.
func TestIndeterminatePutNotEarly(t *testing.T) {
	h := []check.Op{
		op(0, check.OpGet, 1, 9, true, 0, 10, true), // reads 9 before the put exists
		op(0, check.OpPut, 1, 9, false, 20, 0, false),
	}
	if r := check.Linearizable(h); r.Linearizable {
		t.Fatal("time-travelling indeterminate put not flagged")
	}
}

// Indeterminate gets constrain nothing and are dropped.
func TestIndeterminateGetDropped(t *testing.T) {
	h := []check.Op{
		op(0, check.OpPut, 1, 7, false, 0, 10, true),
		op(1, check.OpGet, 1, 999, true, 20, 0, false),
	}
	r := check.Linearizable(h)
	if !r.Linearizable || r.Ops != 1 {
		t.Fatalf("result = %+v", r)
	}
}

// Keys are independent registers: a violation on one key names that key
// and leaves the other passing.
func TestPerKeyIsolation(t *testing.T) {
	h := []check.Op{
		op(0, check.OpPut, 1, 7, false, 0, 10, true),
		op(0, check.OpGet, 1, 7, true, 20, 30, true),
		op(1, check.OpPut, 2, 5, false, 0, 10, true),
		op(1, check.OpGet, 2, 0, false, 40, 50, true), // violation on key 2
	}
	r := check.Linearizable(h)
	if r.Linearizable || len(r.Violations) != 1 || r.Violations[0].Key != 2 {
		t.Fatalf("result = %+v", r)
	}
}

func TestSearchBound(t *testing.T) {
	var h []check.Op
	for i := 0; i < 65; i++ {
		h = append(h, op(0, check.OpPut, 1, uint64(i), false,
			machine.Time(i*10), machine.Time(i*10+5), true))
	}
	r := check.Linearizable(h)
	if r.Linearizable || r.SkippedKeys != 1 {
		t.Fatalf("over-bound key must not pass: %+v", r)
	}
	if !strings.Contains(r.String(), "search bound") {
		t.Fatalf("String() = %q", r.String())
	}
}

// A rejected put is a definite no-op: the checker excludes it outright,
// so a later read must still see the prior value — and a rejected get
// constrains nothing either.
func TestRejectedOpsExcluded(t *testing.T) {
	rejPut := check.Op{Client: 0, Kind: check.OpPut, Key: 1, Val: 9,
		Invoke: 20, Return: 30, Rejected: true}
	rejGet := check.Op{Client: 1, Kind: check.OpGet, Key: 1, Val: 999, Found: true,
		Invoke: 32, Return: 34, Rejected: true}
	h := []check.Op{
		op(0, check.OpPut, 1, 7, false, 0, 10, true),
		rejPut,
		rejGet,
		op(1, check.OpGet, 1, 7, true, 40, 50, true),
	}
	r := check.Linearizable(h)
	if !r.Linearizable {
		t.Fatalf("rejected ops not excluded: %s", r)
	}
	if r.Rejected != 2 || r.Ops != 2 {
		t.Fatalf("result = %+v", r)
	}
}

// The exclusion's teeth: a tier that applies a write it claimed to shed
// plants a value no included op wrote, and the later read observing it
// must be flagged. This is the unit-level shape of the -breakoverload
// negative control.
func TestRejectedPhantomWriteFlagged(t *testing.T) {
	rejPut := check.Op{Client: 0, Kind: check.OpPut, Key: 1, Val: 9,
		Invoke: 20, Return: 30, Rejected: true}
	h := []check.Op{
		op(0, check.OpPut, 1, 7, false, 0, 10, true),
		rejPut,
		op(1, check.OpGet, 1, 9, true, 40, 50, true), // observes the shed write
	}
	r := check.Linearizable(h)
	if r.Linearizable {
		t.Fatal("phantom value from a rejected put not flagged")
	}
	if len(r.Violations) != 1 || r.Violations[0].Key != 1 {
		t.Fatalf("violations = %+v", r.Violations)
	}
}

func TestSplitBrain(t *testing.T) {
	r0 := map[check.AckKey]uint64{
		{Group: 0, Epoch: 1}: 5,
		{Group: 1, Epoch: 2}: 3,
	}
	r1 := map[check.AckKey]uint64{
		{Group: 0, Epoch: 2}: 4, // different epoch: fine
		{Group: 1, Epoch: 2}: 1, // same (group, epoch) as r0: split brain
	}
	bad := check.SplitBrain([]map[check.AckKey]uint64{r0, r1})
	if len(bad) != 1 || bad[0] != (check.AckKey{Group: 1, Epoch: 2}) {
		t.Fatalf("split brain = %+v", bad)
	}
	if got := check.SplitBrain([]map[check.AckKey]uint64{r0, {}}); len(got) != 0 {
		t.Fatalf("healthy logs flagged: %+v", got)
	}
}
