// Package check verifies KV client histories against the register model:
// a Wing-Gong style linearizability search per key, plus the split-brain
// assertion over the replicas' durable ack logs. The simulator is
// deterministic, so a history that fails here fails identically on every
// rerun of the same seed and fault spec — which is what lets the fuzzer
// print a reproducing spec instead of a flaky counterexample.
//
// The KV shards are independent registers (puts and gets of one key
// never read another), so linearizability is checked per key and the
// whole history passes iff every key does (P-compositionality). Each
// key's search is a memoized DFS over which operations have been
// linearized, bounded to 64 ops per key by a uint64 mask.
package check

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// OpKind is the register operation type.
type OpKind int

const (
	OpGet OpKind = iota
	OpPut
)

func (k OpKind) String() string {
	if k == OpPut {
		return "put"
	}
	return "get"
}

// Op is one client operation as the caller experienced it: invocation
// and return stamped with simulated time. An op with Ok=false never
// received an acknowledgement (timeout / abandoned): a put in that state
// is indeterminate — it may have taken effect or not — and a get in that
// state constrains nothing.
type Op struct {
	Client int
	Kind   OpKind
	Key    uint64
	// Val is the value written (put) or observed (get, valid when Found).
	Val uint64
	// Found reports whether a get saw the key at all; a get of a
	// never-written key legitimately returns Found=false.
	Found  bool
	Invoke machine.Time
	Return machine.Time
	Ok     bool
	// Rejected marks a definite no-op: every attempt was refused by a
	// typed overload fast-fail (expired / admission-rejected / breaker
	// open) before any tier applied it, or never sent at all. Unlike a
	// plain Ok=false put, a rejected put cannot have taken effect, so
	// the checker excludes the op from the history entirely. A tier
	// that services work and then claims it was shed breaks exactly
	// this contract — and the checker flags the phantom write.
	Rejected bool
}

func (o Op) String() string {
	body := fmt.Sprintf("%v(%d)", o.Kind, o.Key)
	if o.Kind == OpPut {
		body = fmt.Sprintf("put(%d)=%d", o.Key, o.Val)
	} else if o.Ok {
		if o.Found {
			body = fmt.Sprintf("get(%d)->%d", o.Key, o.Val)
		} else {
			body = fmt.Sprintf("get(%d)->absent", o.Key)
		}
	}
	status := "ok"
	if o.Rejected {
		status = "rejected"
	} else if !o.Ok {
		status = "indet"
	}
	return fmt.Sprintf("c%d %s [%d,%d] %s", o.Client, body,
		uint64(o.Invoke), uint64(o.Return), status)
}

// Violation names one key whose operations admit no linearization.
type Violation struct {
	Key    uint64
	Reason string
	// Ops is the key's sub-history, for the report.
	Ops []Op
}

// Result is the outcome of a history check.
type Result struct {
	Linearizable bool
	Violations   []Violation
	Keys         int // keys checked
	Ops          int // ops considered (indeterminate gets excluded)
	Rejected     int // definite no-ops excluded from every key's history
	SkippedKeys  int // keys over the 64-op search bound (never counts as pass)
}

func (r Result) String() string {
	if r.Linearizable {
		return fmt.Sprintf("linearizable: %d ops over %d keys", r.Ops, r.Keys)
	}
	if len(r.Violations) == 0 {
		return fmt.Sprintf("inconclusive: %d keys over the search bound", r.SkippedKeys)
	}
	return fmt.Sprintf("NOT linearizable: %d violating keys (first: key %d: %s)",
		len(r.Violations), r.Violations[0].Key, r.Violations[0].Reason)
}

// maxKeyOps bounds the per-key search so linearized sets fit a uint64.
const maxKeyOps = 64

// Linearizable checks a whole history against the per-key register
// model. Rejected ops are definite no-ops and excluded outright;
// indeterminate gets are dropped (they constrain nothing);
// indeterminate puts participate as maybe-applied writes.
func Linearizable(h []Op) Result {
	perKey := make(map[uint64][]Op)
	var res Result
	for _, o := range h {
		if o.Rejected {
			res.Rejected++
			continue
		}
		if o.Kind == OpGet && !o.Ok {
			continue
		}
		res.Ops++
		perKey[o.Key] = append(perKey[o.Key], o)
	}
	keys := make([]uint64, 0, len(perKey))
	for k := range perKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	res.Linearizable = true
	for _, k := range keys {
		ops := perKey[k]
		res.Keys++
		if len(ops) > maxKeyOps {
			res.SkippedKeys++
			res.Linearizable = false
			res.Violations = append(res.Violations, Violation{Key: k,
				Reason: fmt.Sprintf("%d ops exceed the %d-op search bound", len(ops), maxKeyOps)})
			continue
		}
		if !linearizableKey(ops) {
			res.Linearizable = false
			res.Violations = append(res.Violations, Violation{Key: k,
				Reason: fmt.Sprintf("no valid linearization of %d ops", len(ops)),
				Ops:    ops})
		}
	}
	return res
}

// keyState is one DFS node: which ops are linearized and which put wrote
// the register's current value (-1: never written).
type keyState struct {
	mask uint64
	last int
}

// linearizableKey searches for a legal total order of one key's ops.
// Sorting by invocation keeps the DFS visiting candidates in a
// deterministic order; correctness does not depend on it.
func linearizableKey(ops []Op) bool {
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].Invoke != ops[j].Invoke {
			return ops[i].Invoke < ops[j].Invoke
		}
		return ops[i].Client < ops[j].Client
	})
	// needMask are the completed ops: all must be linearized for the
	// history to pass. Indeterminate puts may linearize or vanish.
	var needMask uint64
	for i, o := range ops {
		if o.Ok {
			needMask |= 1 << uint(i)
		}
	}
	seen := make(map[keyState]bool)
	var dfs func(st keyState) bool
	dfs = func(st keyState) bool {
		if st.mask&needMask == needMask {
			return true
		}
		if seen[st] {
			return false
		}
		seen[st] = true
		for i, o := range ops {
			bit := uint64(1) << uint(i)
			if st.mask&bit != 0 {
				continue
			}
			// Minimality: o can be next only if no other unlinearized
			// completed op returned before o invoked — otherwise that op's
			// whole duration precedes o and must come first. Indeterminate
			// puts have no return and never block anyone.
			minimal := true
			for j, p := range ops {
				if j == i || st.mask&(1<<uint(j)) != 0 || !p.Ok {
					continue
				}
				if p.Return < o.Invoke {
					minimal = false
					break
				}
			}
			if !minimal {
				continue
			}
			if o.Kind == OpGet {
				// The register's current value must be what the get saw.
				if st.last < 0 {
					if o.Found {
						continue
					}
				} else if !o.Found || ops[st.last].Val != o.Val {
					continue
				}
				if dfs(keyState{mask: st.mask | bit, last: st.last}) {
					return true
				}
				continue
			}
			if dfs(keyState{mask: st.mask | bit, last: i}) {
				return true
			}
		}
		return false
	}
	return dfs(keyState{mask: 0, last: -1})
}

// AckKey identifies one (group, epoch) pair under which a replica rank
// acknowledged client writes; the svc replica's durable ack log uses
// this type directly.
type AckKey struct {
	Group int
	Epoch uint64
}

// SplitBrain intersects the per-rank ack logs: any (group, epoch)
// acknowledged by more than one rank means two primaries held the same
// lease — the exact failure epoch fencing exists to prevent. Returns the
// offending keys sorted, empty when fencing held.
func SplitBrain(logs []map[AckKey]uint64) []AckKey {
	count := make(map[AckKey]int)
	for _, log := range logs {
		for k, n := range log {
			if n > 0 {
				count[k]++
			}
		}
	}
	var bad []AckKey
	for k, ranks := range count {
		if ranks > 1 {
			bad = append(bad, k)
		}
	}
	sort.Slice(bad, func(i, j int) bool {
		if bad[i].Group != bad[j].Group {
			return bad[i].Group < bad[j].Group
		}
		return bad[i].Epoch < bad[j].Epoch
	})
	return bad
}
