package lrpc_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/lrpc"
	"repro/internal/machine"
)

func newSys(t *testing.T) (*kern.System, *lrpc.LRPC) {
	t.Helper()
	sys := kern.New(kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100, DisableCallout: true})
	return sys, lrpc.New(sys)
}

// client drives n RPCs to the server port.
type client struct {
	sys    *kern.System
	server *ipc.Port
	reply  *ipc.Port
	n      int
	done   int
	bodies []any
}

func (c *client) Next(e *core.Env, t *core.Thread) core.Action {
	if m := c.sys.IPC.Received(t); m != nil {
		c.bodies = append(c.bodies, m.Body)
	}
	if c.done >= c.n {
		return core.Exit()
	}
	c.done++
	return core.Syscall("rpc", func(e *core.Env) {
		req := c.sys.IPC.NewMessage(1, ipc.HeaderBytes, c.done, c.reply)
		c.sys.IPC.MachMsg(e, ipc.MsgOptions{Send: req, SendTo: c.server, ReceiveFrom: c.reply})
	})
}

func runLRPCPair(t *testing.T, register bool, rpcs int) (*kern.System, *lrpc.LRPC, *lrpc.Server, *client) {
	t.Helper()
	sys, l := newSys(t)
	st := sys.NewTask("server")
	ct := sys.NewTask("client")
	sp := sys.IPC.NewPort("service")
	rp := sys.IPC.NewPort("reply")
	srv := l.NewServer(sp, func(req *ipc.Message) *ipc.Message {
		return sys.IPC.NewMessage(req.OpID|0x8000, req.Size, req.Body, nil)
	})
	sth := st.NewThread("srv", srv, 20)
	if register {
		srv.Bind(sth)
	}
	cli := &client{sys: sys, server: sp, reply: rp, n: rpcs}
	sys.Start(sth)
	sys.Start(ct.NewThread("cli", cli, 10))
	sys.Run(0)
	return sys, l, srv, cli
}

func TestOverriddenReturnsServeRPCs(t *testing.T) {
	_, l, srv, cli := runLRPCPair(t, true, 10)
	if srv.Handled != 10 {
		t.Fatalf("handled = %d", srv.Handled)
	}
	for i, b := range cli.bodies {
		if b.(int) != i+1 {
			t.Fatalf("bodies = %v", cli.bodies)
		}
	}
	// Every server receive returned through the registered entry.
	if l.OverriddenReturns < 10 {
		t.Fatalf("OverriddenReturns = %d", l.OverriddenReturns)
	}
	if l.DiscardedUserStacks != 1 {
		t.Fatalf("DiscardedUserStacks = %d", l.DiscardedUserStacks)
	}
}

func TestUnregisteredServerStillWorks(t *testing.T) {
	_, l, srv, _ := runLRPCPair(t, false, 5)
	if srv.Handled != 5 {
		t.Fatalf("handled = %d", srv.Handled)
	}
	if l.OverriddenReturns != 0 {
		t.Fatalf("OverriddenReturns = %d without registration", l.OverriddenReturns)
	}
}

func TestOverrideIsCheaper(t *testing.T) {
	timePerRPC := func(register bool) float64 {
		sys, _, _, _ := runLRPCPair(t, register, 200)
		return sys.K.Clock.Now().Micros() / 200
	}
	with := timePerRPC(true)
	without := timePerRPC(false)
	if with >= without {
		t.Fatalf("override not cheaper: %.2f vs %.2f us", with, without)
	}
}

func TestRegisterUnregister(t *testing.T) {
	sys, l := newSys(t)
	task := sys.NewTask("t")
	th := task.NewThread("x", nil, 10)
	if l.Registered(th) {
		t.Fatal("registered before Register")
	}
	l.Register(th, func(*ipc.Message) {})
	l.Register(th, func(*ipc.Message) {}) // idempotent stack accounting
	if !l.Registered(th) || l.DiscardedUserStacks != 1 {
		t.Fatalf("registered=%v stacks=%d", l.Registered(th), l.DiscardedUserStacks)
	}
	l.Unregister(th)
	l.Unregister(th)
	if l.Registered(th) || l.DiscardedUserStacks != 0 {
		t.Fatalf("after unregister: %v %d", l.Registered(th), l.DiscardedUserStacks)
	}
}

func TestSavedPerReturnPositive(t *testing.T) {
	_, l := newSys(t)
	if l.SavedPerReturn() <= 0 {
		t.Fatal("SavedPerReturn should be positive")
	}
}
