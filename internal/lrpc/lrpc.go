// Package lrpc implements the paper's §4 extension: a thread may register
// an overriding user-level continuation for system call returns,
// mimicking the LRPC transfer protocol within the continuation framework.
//
// By default a thread trapping into the kernel generates a continuation
// that transfers control back to the same user-level context in which the
// trap occurred. A server thread that registers an override instead
// returns from mach_msg directly at its dispatch entry point: the kernel
// skips restoring the server's saved user register state, and the server
// may discard its user-level stack while blocked waiting for the next
// request — the properties that make LRPC fast, without migrating
// threads between address spaces.
package lrpc

import (
	"repro/internal/core"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
)

// Entry is a registered user-level continuation: the dispatch routine a
// server thread resumes at when its receive completes. It observes the
// received message; the thread's program then runs from the entry state.
type Entry func(m *ipc.Message)

// UserStackBytes is the user-level stack a blocked server thread retains
// without the extension and may discard with it, for space accounting.
const UserStackBytes = 16 * 1024

// LRPC manages registered overriding return continuations on one system.
type LRPC struct {
	sys     *kern.System
	entries map[int]Entry // thread ID -> dispatch entry

	// OverriddenReturns counts returns that took a registered entry.
	OverriddenReturns uint64

	// DiscardedUserStacks counts user-level stacks registered threads
	// can shed while blocked.
	DiscardedUserStacks int
}

// New installs the extension on a system.
func New(sys *kern.System) *LRPC {
	l := &LRPC{
		sys:     sys,
		entries: make(map[int]Entry),
	}
	sys.IPC.UserReturnHook = l.hook
	return l
}

// Register sets the thread's overriding user-level continuation. The
// thread's subsequent mach_msg receives return at entry instead of the
// post-trap context, and its user stack is considered discardable while
// it blocks.
func (l *LRPC) Register(t *core.Thread, entry Entry) {
	if _, dup := l.entries[t.ID]; !dup {
		l.DiscardedUserStacks++
	}
	l.entries[t.ID] = entry
}

// Unregister restores the default return behaviour.
func (l *LRPC) Unregister(t *core.Thread) {
	if _, ok := l.entries[t.ID]; ok {
		l.DiscardedUserStacks--
	}
	delete(l.entries, t.ID)
}

// Registered reports whether a thread has an override.
func (l *LRPC) Registered(t *core.Thread) bool {
	_, ok := l.entries[t.ID]
	return ok
}

// registerDiscount is the user register restore the override skips: the
// callee-saved file the normal exit reloads.
func registerDiscount(model *machine.CostModel) machine.Cost {
	regs := uint64(model.CalleeSavedRegs)
	return machine.Cost{Instrs: 2 * regs, Loads: regs}
}

// SavedPerReturn reports the work the override avoids per return, in
// simulated microseconds.
func (l *LRPC) SavedPerReturn() float64 {
	return l.sys.K.Model.TimeMicros(registerDiscount(l.sys.K.Model))
}

// hook implements ipc.UserReturnHook: transfer out of the kernel to the
// registered entry rather than the trapped context. Terminal when the
// thread has an override.
func (l *LRPC) hook(e *core.Env, t *core.Thread, m *ipc.Message) bool {
	entry, ok := l.entries[t.ID]
	if !ok {
		return false
	}
	l.OverriddenReturns++
	entry(m)
	l.sys.K.ThreadSyscallReturnOverride(e, ipc.MsgSuccess, registerDiscount(l.sys.K.Model))
	return true
}

// Server is a Program for an LRPC-style server thread: it blocks in
// mach_msg and every request arrives through the registered dispatch
// entry.
type Server struct {
	l     *LRPC
	sys   *kern.System
	port  *ipc.Port
	reply func(req *ipc.Message) *ipc.Message

	// Handled counts requests served.
	Handled uint64

	pending *ipc.Message
}

// NewServer creates an LRPC server on port; reply builds each response.
// Bind the spawned thread before starting it.
func (l *LRPC) NewServer(port *ipc.Port, reply func(req *ipc.Message) *ipc.Message) *Server {
	return &Server{l: l, sys: l.sys, port: port, reply: reply}
}

// Bind registers the server thread's dispatch entry.
func (s *Server) Bind(t *core.Thread) {
	s.l.Register(t, func(m *ipc.Message) {
		// The dispatch entry: the received request is in hand when the
		// thread resumes in user space.
		s.pending = m
	})
}

// Next implements core.UserProgram.
func (s *Server) Next(e *core.Env, t *core.Thread) core.Action {
	// Without a registered entry, requests arrive the ordinary way
	// (copied out to the receive buffer).
	if m := s.sys.IPC.Received(t); m != nil {
		s.pending = m
	}
	if s.pending == nil {
		return core.Syscall("mach_msg(receive)", func(e *core.Env) {
			s.sys.IPC.MachMsg(e, ipc.MsgOptions{ReceiveFrom: s.port})
		})
	}
	req := s.pending
	s.pending = nil
	s.Handled++
	rep := s.reply(req)
	return core.Syscall("mach_msg(reply+receive)", func(e *core.Env) {
		s.sys.IPC.MachMsg(e, ipc.MsgOptions{
			Send: rep, SendTo: req.Reply, ReceiveFrom: s.port,
		})
	})
}
