// Package repro reproduces Draves, Bershad, Dean and Rashid, "Using
// Continuations to Implement Thread Management and Communication in
// Operating Systems" (SOSP 1991), as a deterministic Go simulation of the
// Mach 3.0 kernel and its evaluation.
//
// The public API lives in repro/mach; the substrates (control-transfer
// core, scheduler, IPC, VM, exceptions, workloads) live under
// repro/internal. The benchmarks in this package regenerate every table
// and figure of the paper's evaluation; see EXPERIMENTS.md for the
// side-by-side results and DESIGN.md for the system inventory.
package repro
