// Package mach is the public face of the continuation-kernel simulator:
// a Mach 3.0-style operating system kernel, reproduced from Draves,
// Bershad, Dean and Rashid, "Using Continuations to Implement Thread
// Management and Communication in Operating Systems" (SOSP 1991).
//
// A System is a simulated machine (DECstation 3100 or Toshiba 5200)
// running one of the paper's three kernels:
//
//   - MK40 — the continuation kernel: blocked threads hold a continuation
//     and 28 bytes of scratch instead of a kernel stack; control
//     transfers use stack handoff and continuation recognition.
//   - MK32 — the optimized process-model kernel (dedicated stacks, direct
//     RPC context switch).
//   - Mach25 — the hybrid kernel (dedicated stacks, queued messages,
//     general scheduler).
//
// User activity is supplied as Programs: deterministic generators of user
// actions (CPU bursts, system calls, page faults, exceptions). Everything
// runs on a simulated clock; the same inputs always produce the same
// timeline, statistics and latencies.
//
// A minimal RPC system:
//
//	sys := mach.New(mach.WithKernel(mach.MK40))
//	server := sys.NewTask("server")
//	client := sys.NewTask("client")
//	svc := sys.NewPort("service")
//	server.Spawn("srv", mach.EchoServer(sys, svc), 20)
//	...
//	sys.Run()
package mach

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/exc"
	"repro/internal/ipc"
	"repro/internal/kern"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Kernel selects the kernel build.
type Kernel = kern.Flavor

// The three kernels of the paper's evaluation.
const (
	MK40   = kern.MK40
	MK32   = kern.MK32
	Mach25 = kern.Mach25
)

// Machine selects the simulated hardware.
type Machine = machine.Arch

// The two evaluation machines.
const (
	DS3100      = machine.ArchDS3100
	Toshiba5200 = machine.ArchToshiba5200
)

// Re-exported building blocks. Programs are written against these.
type (
	// Env is the kernel execution environment passed to system call
	// handlers and continuations.
	Env = core.Env
	// Thread is a kernel-level thread.
	Thread = core.Thread
	// Program supplies a thread's user-mode behaviour.
	Program = core.UserProgram
	// Action is one user-mode step.
	Action = core.Action
	// Continuation is a named, comparable resumption point.
	Continuation = core.Continuation
	// Port is a Mach port.
	Port = ipc.Port
	// Message is a Mach message.
	Message = ipc.Message
	// MsgOptions describes one mach_msg call.
	MsgOptions = ipc.MsgOptions
	// PortSet groups ports so one receive serves all of them.
	PortSet = ipc.PortSet
	// Duration and Time are simulated-clock units (nanoseconds).
	Duration = machine.Duration
	// Time is a simulated timestamp.
	Time = machine.Time
	// Cost counts simulated work (instructions, loads, stores).
	Cost = machine.Cost
	// ExcInfo is the body of an exception request message.
	ExcInfo = exc.ExcInfo
)

// Action constructors, re-exported for program authors.
var (
	// RunFor burns user CPU cycles.
	RunFor = core.RunFor
	// Syscall traps into the kernel and runs the handler, which must end
	// in a terminal control-transfer operation.
	Syscall = core.Syscall
	// Exit terminates the thread.
	Exit = core.Exit
	// NewContinuation declares a continuation point.
	NewContinuation = core.NewContinuation
)

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc = core.ProgramFunc

// Option configures a System.
type Option func(*kern.Config)

// WithKernel selects the kernel build (default MK40).
func WithKernel(k Kernel) Option {
	return func(c *kern.Config) { c.Flavor = k }
}

// WithMachine selects the simulated hardware (default DS3100).
func WithMachine(m Machine) Option {
	return func(c *kern.Config) { c.Arch = m }
}

// WithProcessors sets the CPU count (default 1).
func WithProcessors(n int) Option {
	return func(c *kern.Config) { c.Processors = n }
}

// WithMemoryFrames sets the physical page pool size.
func WithMemoryFrames(n int) Option {
	return func(c *kern.Config) { c.Frames = n }
}

// WithQuantum sets the scheduling time slice.
func WithQuantum(d Duration) Option {
	return func(c *kern.Config) { c.Quantum = d }
}

// WithoutCallout omits the special process-model kernel thread, for
// experiments that need an exact stack census.
func WithoutCallout() Option {
	return func(c *kern.Config) { c.DisableCallout = true }
}

// System is a booted simulated machine plus kernel.
type System struct {
	sys *kern.System

	// rec is the event recorder installed by EnableTrace (nil while
	// tracing is off).
	rec *obs.Recorder
}

// New boots a system.
func New(opts ...Option) *System {
	cfg := kern.Config{Flavor: kern.MK40, Arch: machine.ArchDS3100}
	for _, o := range opts {
		o(&cfg)
	}
	return &System{sys: kern.New(cfg)}
}

// Kern exposes the underlying assembled kernel for advanced use (the
// substrates hang off it).
func (s *System) Kern() *kern.System { return s.sys }

// Task is an address space that threads run in.
type Task struct {
	sys  *System
	task *kern.Task
}

// NewTask creates a task with a fresh address space.
func (s *System) NewTask(name string) *Task {
	return &Task{sys: s, task: s.sys.NewTask(name)}
}

// Name returns the task name.
func (t *Task) Name() string { return t.task.Name }

// Spawn creates and starts a thread running prog at the given priority
// (0..31, larger is more urgent).
func (t *Task) Spawn(name string, prog Program, priority int) *Thread {
	th := t.task.NewThread(name, prog, priority)
	t.sys.sys.Start(th)
	return th
}

// SpawnSuspended creates a thread without starting it; resume with
// System.Resume.
func (t *Task) SpawnSuspended(name string, prog Program, priority int) *Thread {
	return t.task.NewThread(name, prog, priority)
}

// Resume makes a suspended thread runnable.
func (s *System) Resume(t *Thread) { s.sys.Start(t) }

// NewPort allocates a port.
func (s *System) NewPort(name string) *Port { return s.sys.IPC.NewPort(name) }

// NewPortSet allocates a port set; receive with
// MsgOptions.ReceiveFromSet.
func (s *System) NewPortSet(name string) *PortSet { return s.sys.IPC.NewPortSet(name) }

// AddToSet puts a port into a set (a port belongs to at most one).
func (s *System) AddToSet(p *Port, ps *PortSet) { s.sys.IPC.AddToSet(p, ps) }

// DestroyPort destroys a port: queued messages are dropped, blocked
// receivers wake with RcvPortDied, and future sends fail.
func (s *System) DestroyPort(e *Env, p *Port) { s.sys.IPC.DestroyPort(e, p) }

// NewMessage builds a message of the given total size in bytes carrying
// an arbitrary payload; reply names the port for the response.
func (s *System) NewMessage(op uint32, size int, body any, reply *Port) *Message {
	return s.sys.IPC.NewMessage(op, size, body, reply)
}

// MachMsg performs the combined send/receive system call from inside a
// Syscall handler. Terminal.
func (s *System) MachMsg(e *Env, opts MsgOptions) { s.sys.IPC.MachMsg(e, opts) }

// Received returns (and clears) the message the thread's last receive
// delivered, as a user program would read its receive buffer.
func (s *System) Received(t *Thread) *Message { return s.sys.IPC.Received(t) }

// SetExceptionPort routes a thread's exceptions to the port's server.
func (s *System) SetExceptionPort(t *Thread, p *Port) {
	s.sys.Exc.SetExceptionPort(t, p)
}

// Touch pre-faults a page into a task's address space.
func (s *System) Touch(t *Task, addr uint64) {
	s.sys.VM.Touch(t.task.ID, addr)
}

// ShareCopyOnWrite maps n pages starting at addr from src into dst
// copy-on-write (vm_map with inheritance, the substrate of fast fork and
// large message transfer). Returns the number of pages shared.
func (s *System) ShareCopyOnWrite(e *Env, src, dst *Task, addr uint64, n int) int {
	return s.sys.VM.ShareCopyOnWrite(e, src.task.ID, dst.task.ID, addr, n)
}

// Run drives the machine until it quiesces (every thread blocked or
// exited with nothing pending). It returns the simulated time.
func (s *System) Run() Time {
	s.sys.Run(0)
	return s.sys.K.Clock.Now()
}

// RunFor drives the machine for a span of simulated time.
func (s *System) RunFor(d Duration) Time {
	s.sys.Run(s.sys.K.Clock.Now() + d)
	return s.sys.K.Clock.Now()
}

// Now returns the simulated time.
func (s *System) Now() Time { return s.sys.K.Clock.Now() }

// Stats summarizes the control-transfer behaviour of a run in the terms
// of the paper's evaluation.
type Stats struct {
	// TotalBlocks is the number of blocking operations.
	TotalBlocks uint64
	// StackDiscards counts blocks that relinquished the kernel stack
	// (continuation-style blocks); Table 1.
	StackDiscards uint64
	// Handoffs counts stack handoffs; Table 2.
	Handoffs uint64
	// Recognitions counts continuation recognitions; Table 2.
	Recognitions uint64
	// ContextSwitches counts full register save/restore transfers.
	ContextSwitches uint64
	// StacksInUse and StacksMax and StacksAvg describe kernel stack
	// consumption; §3.4 and Table 5.
	StacksInUse int
	StacksMax   int
	StacksAvg   float64
	// LiveThreads counts non-exited threads.
	LiveThreads int
	// PerThreadBytes is the measured average kernel memory per thread.
	PerThreadBytes float64
}

// Stats returns the current counters.
func (s *System) Stats() Stats {
	k := s.sys.K
	return Stats{
		TotalBlocks:     k.Stats.TotalBlocks(),
		StackDiscards:   k.Stats.TotalDiscards(),
		Handoffs:        k.Stats.Handoffs,
		Recognitions:    k.Stats.Recognitions,
		ContextSwitches: k.Stats.ContextSwitches,
		StacksInUse:     k.Stacks.InUse(),
		StacksMax:       k.Stacks.MaxInUse(),
		StacksAvg:       k.Stacks.AverageInUse(),
		LiveThreads:     k.LiveThreads(),
		PerThreadBytes:  s.sys.MeasuredPerThreadBytes(),
	}
}

// BlockBreakdown returns per-reason block counts in Table 1 row order,
// plus the count of process-model (no-discard) blocks.
func (s *System) BlockBreakdown() (rows map[string]uint64, noDiscard uint64) {
	rows = make(map[string]uint64)
	for _, r := range stats.DiscardReasons {
		rows[r.String()] = s.sys.K.Stats.BlocksWithDiscard[r]
	}
	return rows, s.sys.K.Stats.TotalNoDiscards()
}

// EnableTrace turns on control-transfer tracing by installing an event
// recorder on the kernel; String the result after a run (see Figure 2 of
// the paper).
func (s *System) EnableTrace() {
	if s.rec == nil {
		s.rec = s.sys.EnableObservation(0)
	}
}

// Recorder exposes the installed event recorder (nil until EnableTrace),
// for histogram and continuation-profile queries.
func (s *System) Recorder() *obs.Recorder { return s.rec }

// TraceString renders the recorded control-transfer steps in the legacy
// Figure 2 format.
func (s *System) TraceString() string {
	if s.rec == nil {
		return ""
	}
	return obs.ToTrace(s.rec.Events()).String()
}

// ProfileString renders the recorder's continuation profile and latency
// histograms ("" until EnableTrace).
func (s *System) ProfileString() string {
	if s.rec == nil {
		return ""
	}
	var b strings.Builder
	s.rec.WriteReport(&b)
	return b.String()
}

// ResetTrace clears recorded trace entries and statistics.
func (s *System) ResetTrace() {
	if s.rec != nil {
		s.rec.Reset()
	}
}

// EchoServer returns a Program that receives on port forever and answers
// every message with its own body — the canonical RPC server.
func EchoServer(s *System, port *Port) Program {
	var pending *Message
	return ProgramFunc(func(e *Env, t *Thread) Action {
		if m := s.Received(t); m != nil {
			pending = m
		}
		if pending == nil {
			return Syscall("mach_msg(receive)", func(e *Env) {
				s.MachMsg(e, MsgOptions{ReceiveFrom: port})
			})
		}
		req := pending
		pending = nil
		return Syscall("mach_msg(reply+receive)", func(e *Env) {
			reply := s.NewMessage(req.OpID|0x8000, req.Size, req.Body, nil)
			s.MachMsg(e, MsgOptions{Send: reply, SendTo: req.Reply, ReceiveFrom: port})
		})
	})
}

// RPC returns the Action that sends body to service and waits for the
// reply on replyPort — one half of a ping-pong.
func RPC(s *System, service, replyPort *Port, op uint32, size int, body any) Action {
	return Syscall("mach_msg(rpc)", func(e *Env) {
		req := s.NewMessage(op, size, body, replyPort)
		s.MachMsg(e, MsgOptions{Send: req, SendTo: service, ReceiveFrom: replyPort})
	})
}

// Fault returns the Action that touches addr, faulting if non-resident.
func Fault(addr uint64) Action { return Action{Kind: core.ActFault, Addr: addr} }

// WriteFault returns the Action that stores to addr: resident
// copy-on-write pages are privatized, non-resident pages fault in.
func WriteFault(addr uint64) Action {
	return Action{Kind: core.ActFault, Addr: addr, Write: true}
}

// RaiseException returns the Action that raises a user-level exception.
func RaiseException(code int) Action { return Action{Kind: core.ActException, Code: code} }

// Yield returns the voluntary thread_switch Action.
func Yield() Action { return Action{Kind: core.ActYield} }

// PageSize is the simulated machine's page size.
const PageSize = vm.PageSize

// String renders a compact one-line summary.
func (st Stats) String() string {
	return fmt.Sprintf("blocks=%d discards=%d (%.1f%%) handoffs=%d recognitions=%d stacks{cur=%d max=%d avg=%.2f} threads=%d",
		st.TotalBlocks, st.StackDiscards,
		stats.Percent(st.StackDiscards, st.TotalBlocks),
		st.Handoffs, st.Recognitions,
		st.StacksInUse, st.StacksMax, st.StacksAvg, st.LiveThreads)
}
