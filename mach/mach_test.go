package mach_test

import (
	"strings"
	"testing"

	"repro/mach"
)

func TestQuickstartRPC(t *testing.T) {
	sys := mach.New(mach.WithKernel(mach.MK40), mach.WithoutCallout())
	serverTask := sys.NewTask("server")
	clientTask := sys.NewTask("client")
	svc := sys.NewPort("service")
	reply := sys.NewPort("reply")

	serverTask.Spawn("srv", mach.EchoServer(sys, svc), 20)

	var answers []any
	done := 0
	clientTask.Spawn("cli", mach.ProgramFunc(func(e *mach.Env, th *mach.Thread) mach.Action {
		if m := sys.Received(th); m != nil {
			answers = append(answers, m.Body)
		}
		if done >= 5 {
			return mach.Exit()
		}
		done++
		return mach.RPC(sys, svc, reply, 7, 64, done)
	}), 10)

	sys.Run()
	if len(answers) != 5 {
		t.Fatalf("answers = %v", answers)
	}
	for i, a := range answers {
		if a.(int) != i+1 {
			t.Fatalf("answer %d = %v", i, a)
		}
	}
	st := sys.Stats()
	if st.Handoffs == 0 || st.Recognitions == 0 {
		t.Fatalf("fast path unused: %v", st)
	}
	if st.StacksMax > 2 {
		t.Fatalf("stack high water = %d", st.StacksMax)
	}
}

func TestFlavorOptions(t *testing.T) {
	for _, k := range []mach.Kernel{mach.MK40, mach.MK32, mach.Mach25} {
		sys := mach.New(mach.WithKernel(k), mach.WithMachine(mach.Toshiba5200))
		if sys.Kern().Flavor != k {
			t.Fatalf("flavor = %v", sys.Kern().Flavor)
		}
	}
}

func TestStatsString(t *testing.T) {
	sys := mach.New(mach.WithoutCallout())
	task := sys.NewTask("t")
	task.Spawn("noop", mach.ProgramFunc(func(e *mach.Env, th *mach.Thread) mach.Action {
		return mach.Exit()
	}), 10)
	sys.Run()
	if s := sys.Stats().String(); !strings.Contains(s, "blocks=") {
		t.Fatalf("Stats.String = %q", s)
	}
}

func TestFaultAndTouch(t *testing.T) {
	sys := mach.New(mach.WithMemoryFrames(64), mach.WithoutCallout())
	task := sys.NewTask("t")
	sys.Touch(task, 0x4000)
	step := 0
	th := task.Spawn("faulter", mach.ProgramFunc(func(e *mach.Env, th *mach.Thread) mach.Action {
		step++
		switch step {
		case 1:
			return mach.Fault(0x4000) // resident: fast
		case 2:
			return mach.Fault(0x9000) // disk fault
		default:
			return mach.Exit()
		}
	}), 10)
	sys.Run()
	if th.State.String() != "halted" {
		t.Fatalf("state = %v", th.State)
	}
	if sys.Kern().VM.FastFaults != 1 || sys.Kern().VM.DiskFaults != 1 {
		t.Fatalf("faults: fast=%d disk=%d", sys.Kern().VM.FastFaults, sys.Kern().VM.DiskFaults)
	}
}

func TestExceptionRouting(t *testing.T) {
	sys := mach.New(mach.WithoutCallout())
	task := sys.NewTask("emu")
	port := sys.NewPort("exc")

	var handled int
	var pending *mach.Message
	task.Spawn("handler", mach.ProgramFunc(func(e *mach.Env, th *mach.Thread) mach.Action {
		if m := sys.Received(th); m != nil {
			pending = m
		}
		if pending == nil {
			return mach.Syscall("recv", func(e *mach.Env) {
				sys.MachMsg(e, mach.MsgOptions{ReceiveFrom: port})
			})
		}
		req := pending
		pending = nil
		if _, ok := req.Body.(mach.ExcInfo); !ok {
			t.Errorf("body = %T", req.Body)
		}
		handled++
		return mach.Syscall("reply", func(e *mach.Env) {
			reply := sys.NewMessage(1, 24, nil, nil)
			sys.MachMsg(e, mach.MsgOptions{Send: reply, SendTo: req.Reply, ReceiveFrom: port})
		})
	}), 20)

	n := 0
	faulter := task.SpawnSuspended("dos", mach.ProgramFunc(func(e *mach.Env, th *mach.Thread) mach.Action {
		if n >= 3 {
			return mach.Exit()
		}
		n++
		return mach.RaiseException(n)
	}), 10)
	sys.SetExceptionPort(faulter, port)
	sys.Resume(faulter)

	sys.Run()
	if handled != 3 {
		t.Fatalf("handled = %d", handled)
	}
}

func TestTraceCapture(t *testing.T) {
	sys := mach.New(mach.WithoutCallout())
	task := sys.NewTask("t")
	sys.EnableTrace()
	task.Spawn("p", mach.ProgramFunc(func(e *mach.Env, th *mach.Thread) mach.Action {
		return mach.Exit()
	}), 10)
	sys.Run()
	if sys.TraceString() == "" {
		t.Fatal("no trace captured")
	}
	sys.ResetTrace()
	if sys.TraceString() != "" {
		t.Fatal("trace not reset")
	}
}

func TestRunForAdvancesClock(t *testing.T) {
	sys := mach.New()
	start := sys.Now()
	end := sys.RunFor(mach.Duration(5_000_000))
	if end < start+5_000_000 {
		t.Fatalf("clock: %v -> %v", start, end)
	}
}

func TestBlockBreakdown(t *testing.T) {
	sys := mach.New(mach.WithoutCallout())
	serverTask := sys.NewTask("server")
	svc := sys.NewPort("service")
	serverTask.Spawn("srv", mach.EchoServer(sys, svc), 20)
	sys.Run()
	rows, _ := sys.BlockBreakdown()
	if rows["message receive"] == 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestYieldAction(t *testing.T) {
	sys := mach.New(mach.WithoutCallout())
	task := sys.NewTask("t")
	for i := 0; i < 2; i++ {
		n := 0
		task.Spawn("y", mach.ProgramFunc(func(e *mach.Env, th *mach.Thread) mach.Action {
			n++
			if n > 3 {
				return mach.Exit()
			}
			return mach.Yield()
		}), 10)
	}
	sys.Run()
	rows, _ := sys.BlockBreakdown()
	if rows["thread switch"] == 0 {
		t.Fatal("no thread_switch blocks")
	}
}
