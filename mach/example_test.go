package mach_test

import (
	"fmt"

	"repro/mach"
)

// Example boots the continuation kernel, runs one RPC, and prints the
// control-transfer mechanics the paper introduces.
func Example() {
	sys := mach.New(mach.WithKernel(mach.MK40), mach.WithoutCallout())
	server := sys.NewTask("server")
	client := sys.NewTask("client")
	svc := sys.NewPort("service")
	reply := sys.NewPort("reply")

	server.Spawn("srv", mach.EchoServer(sys, svc), 20)

	sent := false
	client.Spawn("cli", mach.ProgramFunc(func(e *mach.Env, t *mach.Thread) mach.Action {
		if m := sys.Received(t); m != nil {
			fmt.Println("reply:", m.Body)
			return mach.Exit()
		}
		if sent {
			return mach.Exit()
		}
		sent = true
		return mach.RPC(sys, svc, reply, 1, 64, "hello")
	}), 10)

	sys.Run()
	st := sys.Stats()
	fmt.Printf("handoffs=%d recognitions=%d max stacks=%d\n",
		st.Handoffs, st.Recognitions, st.StacksMax)
	// Output:
	// reply: hello
	// handoffs=4 recognitions=2 max stacks=1
}

// ExampleSystem_ShareCopyOnWrite maps pages between tasks copy-on-write
// and shows a write fault privatizing one.
func ExampleSystem_ShareCopyOnWrite() {
	sys := mach.New(mach.WithoutCallout(), mach.WithMemoryFrames(64))
	parent := sys.NewTask("parent")
	child := sys.NewTask("child")
	sys.Touch(parent, 0x10000)
	sys.Touch(parent, 0x11000)

	step := 0
	child.Spawn("fork-child", mach.ProgramFunc(func(e *mach.Env, t *mach.Thread) mach.Action {
		step++
		switch step {
		case 1:
			return mach.Syscall("vm_inherit", func(e *mach.Env) {
				n := sys.ShareCopyOnWrite(e, parent, child, 0x10000, 2)
				fmt.Println("pages shared:", n)
				e.K.ThreadSyscallReturn(e, 0)
			})
		case 2:
			return mach.WriteFault(0x10000) // privatizes the page
		default:
			return mach.Exit()
		}
	}), 10)
	sys.Run()
	fmt.Println("cow breaks:", sys.Kern().VM.CowBreaks)
	// Output:
	// pages shared: 2
	// cow breaks: 1
}

// ExampleSystem_Stats runs a fault-heavy task and summarizes the kernel's
// behaviour.
func ExampleSystem_Stats() {
	sys := mach.New(mach.WithoutCallout(), mach.WithMemoryFrames(128))
	task := sys.NewTask("app")
	n := 0
	task.Spawn("faulter", mach.ProgramFunc(func(e *mach.Env, t *mach.Thread) mach.Action {
		if n >= 3 {
			return mach.Exit()
		}
		n++
		return mach.Fault(uint64(0x4000 * n))
	}), 10)
	sys.Run()
	rows, _ := sys.BlockBreakdown()
	fmt.Println("page fault blocks:", rows["page fault"])
	fmt.Println("stacks in use after run:", sys.Stats().StacksInUse)
	// Output:
	// page fault blocks: 3
	// stacks in use after run: 0
}
